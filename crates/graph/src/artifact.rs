//! The `.fplan` plan artifact: a versioned, checksummed, little-endian
//! binary container for compiled [`ExecPlan`]s.
//!
//! An artifact is fully self-contained — shape signature, scheduled steps,
//! arena slot layout (with the compiled `max_batch`), and a raw-f32
//! parameter snapshot — so an edge deployment can load and serve it against
//! `fuse-tensor`/`fuse-backend` alone, with no `fuse-nn` lowering stack and
//! no startup compilation. The byte layout is specified normatively in
//! `REPRODUCIBILITY.md`; in short:
//!
//! ```text
//! magic "FPLN" | format version u32 | payload length u64 | payload | FNV-1a-64 checksum u64
//! ```
//!
//! All integers are little-endian; `f32` values are stored as the
//! little-endian bytes of their IEEE-754 bit patterns, so a round trip is
//! bit-exact (NaN payloads included). Format v2 appends two length-prefixed
//! tables after the f32 parameters — int8 quantized weights and per-channel
//! f32 scales — and adds the quantized step tags; readers accept
//! `v1..=v2`, decoding v1 artifacts to float plans with empty quantized
//! sections. Every malformed input — wrong magic,
//! unknown version, short file, corrupt payload, or a structurally valid
//! payload describing an inconsistent plan — is a typed [`GraphError`];
//! loading never panics, and a loaded plan's `run` is panic-free because all
//! arena and parameter ranges are bounds- and overlap-checked here.

use std::fs;
use std::ops::Range;
use std::path::Path;

use fuse_tensor::Conv2dSpec;

use crate::error::GraphError;
use crate::graph::ShapeSignature;
use crate::meta::{DType, TensorMeta};
use crate::plan::{ExecPlan, Src, Step};
use crate::Result;

/// The four magic bytes opening every `.fplan` artifact.
pub const FPLAN_MAGIC: [u8; 4] = *b"FPLN";

/// The artifact format version this build writes. Readers accept
/// `1..=FPLAN_VERSION`: v1 is the float-only layout, v2 appends the int8
/// quantized-weight and per-channel scale tables (and may carry quantized
/// step tags). A v1 artifact decodes to a float plan with empty quantized
/// sections.
///
/// Any change to the byte layout — new step tags included — must bump this;
/// readers reject every newer or unknown version with
/// [`GraphError::UnsupportedVersion`] rather than guessing.
pub const FPLAN_VERSION: u32 = 2;

/// The oldest artifact format version this build still reads.
pub const FPLAN_MIN_VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8;
const CHECKSUM_LEN: usize = 8;

const TAG_CONV2D: u8 = 0;
const TAG_CONV1X1: u8 = 1;
const TAG_LINEAR: u8 = 2;
const TAG_RELU: u8 = 3;
const TAG_MAXPOOL2D: u8 = 4;
// v2-only tags: quantized steps referencing the int8/scale tables.
const TAG_QCONV2D: u8 = 5;
const TAG_QLINEAR: u8 = 6;

const SRC_INPUT: u8 = 0;
const SRC_ARENA: u8 = 1;

const DTYPE_F32: u8 = 0;

/// FNV-1a 64-bit over `bytes` — dependency-free, byte-order independent, and
/// plenty to catch truncation and bit rot (this is an integrity check, not an
/// authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn i8s(&mut self, v: &[i8]) {
        self.buf.extend(v.iter().map(|&x| x as u8));
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn range(&mut self, r: &Range<usize>) {
        self.usize(r.start);
        self.usize(r.end);
    }
    fn meta(&mut self, m: &TensorMeta) {
        match m.dtype() {
            DType::F32 => self.u8(DTYPE_F32),
        }
        self.u32(m.dims().len() as u32);
        for &d in m.dims() {
            self.usize(d);
        }
    }
    fn src(&mut self, s: &Src) {
        match s {
            Src::Input => self.u8(SRC_INPUT),
            Src::Arena { offset } => {
                self.u8(SRC_ARENA);
                self.usize(*offset);
            }
        }
    }
    fn spec(&mut self, s: &Conv2dSpec) {
        self.usize(s.in_channels);
        self.usize(s.out_channels);
        self.usize(s.kernel);
        self.usize(s.stride);
        self.usize(s.padding);
    }
}

fn encode_payload(plan: &ExecPlan) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };

    let sig = &plan.signature;
    e.u32(sig.layer_names().len() as u32);
    for name in sig.layer_names() {
        e.str(name);
    }
    e.usize(sig.param_len());
    e.meta(sig.input());
    e.meta(sig.output());

    e.meta(&plan.input);
    e.meta(&plan.output);
    e.usize(plan.max_batch);
    e.usize(plan.out_offset);
    e.usize(plan.arena.len());

    e.u32(plan.steps.len() as u32);
    for step in &plan.steps {
        match step {
            Step::Conv2d {
                spec,
                h,
                w,
                src,
                src_len,
                cols_offset,
                cols_len,
                dst_offset,
                dst_len,
                weight,
                bias,
                relu,
            } => {
                e.u8(TAG_CONV2D);
                e.spec(spec);
                e.usize(*h);
                e.usize(*w);
                e.src(src);
                e.usize(*src_len);
                e.usize(*cols_offset);
                e.usize(*cols_len);
                e.usize(*dst_offset);
                e.usize(*dst_len);
                e.range(weight);
                e.range(bias);
                e.u8(u8::from(*relu));
            }
            Step::Conv1x1 { spec, h, w, src, src_len, dst_offset, dst_len, weight, bias, relu } => {
                e.u8(TAG_CONV1X1);
                e.spec(spec);
                e.usize(*h);
                e.usize(*w);
                e.src(src);
                e.usize(*src_len);
                e.usize(*dst_offset);
                e.usize(*dst_len);
                e.range(weight);
                e.range(bias);
                e.u8(u8::from(*relu));
            }
            Step::Linear { in_features, out_features, src, dst_offset, weight, bias, relu } => {
                e.u8(TAG_LINEAR);
                e.usize(*in_features);
                e.usize(*out_features);
                e.src(src);
                e.usize(*dst_offset);
                e.range(weight);
                e.range(bias);
                e.u8(u8::from(*relu));
            }
            Step::Relu { src, len, dst_offset } => {
                e.u8(TAG_RELU);
                e.src(src);
                e.usize(*len);
                e.usize(*dst_offset);
            }
            Step::MaxPool2d { window, c, h, w, src, src_len, dst_offset, dst_len } => {
                e.u8(TAG_MAXPOOL2D);
                e.usize(*window);
                e.usize(*c);
                e.usize(*h);
                e.usize(*w);
                e.src(src);
                e.usize(*src_len);
                e.usize(*dst_offset);
                e.usize(*dst_len);
            }
            Step::QConv2d {
                spec,
                h,
                w,
                src,
                src_len,
                dst_offset,
                dst_len,
                weight,
                scale,
                bias,
                relu,
            } => {
                e.u8(TAG_QCONV2D);
                e.spec(spec);
                e.usize(*h);
                e.usize(*w);
                e.src(src);
                e.usize(*src_len);
                e.usize(*dst_offset);
                e.usize(*dst_len);
                e.range(weight);
                e.range(scale);
                e.range(bias);
                e.u8(u8::from(*relu));
            }
            Step::QLinear {
                in_features,
                out_features,
                src,
                dst_offset,
                weight,
                scale,
                bias,
                relu,
            } => {
                e.u8(TAG_QLINEAR);
                e.usize(*in_features);
                e.usize(*out_features);
                e.src(src);
                e.usize(*dst_offset);
                e.range(weight);
                e.range(scale);
                e.range(bias);
                e.u8(u8::from(*relu));
            }
        }
    }

    e.usize(plan.params.len());
    for &p in &plan.params {
        e.f32(p);
    }

    // v2 quantized sections: length-prefixed int8 weights, then f32 scales.
    e.usize(plan.qweights.len());
    e.i8s(&plan.qweights);
    e.usize(plan.qscales.len());
    for &s in &plan.qscales {
        e.f32(s);
    }
    e.buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let available = self.bytes.len() - self.pos;
        if available < n {
            return Err(GraphError::Truncated { needed: n, available });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| GraphError::Malformed(format!("value {v} exceeds the address space")))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes"))))
    }
    fn i8s(&mut self, n: usize) -> Result<Vec<i8>> {
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }
    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| GraphError::Malformed("layer name is not valid UTF-8".into()))
    }
    fn range(&mut self) -> Result<Range<usize>> {
        let start = self.usize()?;
        let end = self.usize()?;
        if start > end {
            return Err(GraphError::Malformed(format!("inverted range {start}..{end}")));
        }
        Ok(start..end)
    }
    fn meta(&mut self) -> Result<TensorMeta> {
        match self.u8()? {
            DTYPE_F32 => {}
            tag => return Err(GraphError::Malformed(format!("unknown dtype tag {tag}"))),
        }
        let rank = self.u32()? as usize;
        if rank > 8 {
            return Err(GraphError::Malformed(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.usize()?);
        }
        Ok(TensorMeta::f32(&dims))
    }
    fn src(&mut self) -> Result<Src> {
        match self.u8()? {
            SRC_INPUT => Ok(Src::Input),
            SRC_ARENA => Ok(Src::Arena { offset: self.usize()? }),
            tag => Err(GraphError::Malformed(format!("unknown source tag {tag}"))),
        }
    }
    fn spec(&mut self) -> Result<Conv2dSpec> {
        Ok(Conv2dSpec {
            in_channels: self.usize()?,
            out_channels: self.usize()?,
            kernel: self.usize()?,
            stride: self.usize()?,
            padding: self.usize()?,
        })
    }
}

fn decode_payload(payload: &[u8], version: u32) -> Result<ExecPlan> {
    let mut d = Dec { bytes: payload, pos: 0 };

    let name_count = d.u32()? as usize;
    let mut layer_names = Vec::with_capacity(name_count.min(1024));
    for _ in 0..name_count {
        layer_names.push(d.str()?);
    }
    let sig_param_len = d.usize()?;
    let sig_input = d.meta()?;
    let sig_output = d.meta()?;
    let signature = ShapeSignature::from_parts(layer_names, sig_param_len, sig_input, sig_output);

    let input = d.meta()?;
    let output = d.meta()?;
    let max_batch = d.usize()?;
    let out_offset = d.usize()?;
    let arena_len = d.usize()?;

    let step_count = d.u32()? as usize;
    let mut steps = Vec::with_capacity(step_count.min(1024));
    for _ in 0..step_count {
        let step = match d.u8()? {
            TAG_CONV2D => Step::Conv2d {
                spec: d.spec()?,
                h: d.usize()?,
                w: d.usize()?,
                src: d.src()?,
                src_len: d.usize()?,
                cols_offset: d.usize()?,
                cols_len: d.usize()?,
                dst_offset: d.usize()?,
                dst_len: d.usize()?,
                weight: d.range()?,
                bias: d.range()?,
                relu: d.u8()? != 0,
            },
            TAG_CONV1X1 => Step::Conv1x1 {
                spec: d.spec()?,
                h: d.usize()?,
                w: d.usize()?,
                src: d.src()?,
                src_len: d.usize()?,
                dst_offset: d.usize()?,
                dst_len: d.usize()?,
                weight: d.range()?,
                bias: d.range()?,
                relu: d.u8()? != 0,
            },
            TAG_LINEAR => Step::Linear {
                in_features: d.usize()?,
                out_features: d.usize()?,
                src: d.src()?,
                dst_offset: d.usize()?,
                weight: d.range()?,
                bias: d.range()?,
                relu: d.u8()? != 0,
            },
            TAG_RELU => Step::Relu { src: d.src()?, len: d.usize()?, dst_offset: d.usize()? },
            TAG_MAXPOOL2D => Step::MaxPool2d {
                window: d.usize()?,
                c: d.usize()?,
                h: d.usize()?,
                w: d.usize()?,
                src: d.src()?,
                src_len: d.usize()?,
                dst_offset: d.usize()?,
                dst_len: d.usize()?,
            },
            tag @ (TAG_QCONV2D | TAG_QLINEAR) if version < 2 => {
                return Err(GraphError::Malformed(format!(
                    "quantized step tag {tag} in a v{version} artifact"
                )))
            }
            TAG_QCONV2D => Step::QConv2d {
                spec: d.spec()?,
                h: d.usize()?,
                w: d.usize()?,
                src: d.src()?,
                src_len: d.usize()?,
                dst_offset: d.usize()?,
                dst_len: d.usize()?,
                weight: d.range()?,
                scale: d.range()?,
                bias: d.range()?,
                relu: d.u8()? != 0,
            },
            TAG_QLINEAR => Step::QLinear {
                in_features: d.usize()?,
                out_features: d.usize()?,
                src: d.src()?,
                dst_offset: d.usize()?,
                weight: d.range()?,
                scale: d.range()?,
                bias: d.range()?,
                relu: d.u8()? != 0,
            },
            tag => return Err(GraphError::Malformed(format!("unknown step tag {tag}"))),
        };
        steps.push(step);
    }

    let param_count = d.usize()?;
    // Guard the allocation against a lying count before reading the floats.
    let available = payload.len() - d.pos;
    if param_count.checked_mul(4).map(|need| need > available).unwrap_or(true) {
        return Err(GraphError::Truncated { needed: param_count.saturating_mul(4), available });
    }
    let mut params = Vec::with_capacity(param_count);
    for _ in 0..param_count {
        params.push(d.f32()?);
    }

    // v2 quantized sections; a v1 artifact simply has none.
    let (qweights, qscales) = if version >= 2 {
        let qweight_count = d.usize()?;
        let available = payload.len() - d.pos;
        if qweight_count > available {
            return Err(GraphError::Truncated { needed: qweight_count, available });
        }
        let qweights = d.i8s(qweight_count)?;
        let qscale_count = d.usize()?;
        let available = payload.len() - d.pos;
        if qscale_count.checked_mul(4).map(|need| need > available).unwrap_or(true) {
            return Err(GraphError::Truncated {
                needed: qscale_count.saturating_mul(4),
                available,
            });
        }
        let mut qscales = Vec::with_capacity(qscale_count);
        for _ in 0..qscale_count {
            qscales.push(d.f32()?);
        }
        (qweights, qscales)
    } else {
        (Vec::new(), Vec::new())
    };

    if d.pos != payload.len() {
        return Err(GraphError::Malformed(format!(
            "{} trailing payload bytes after the parameter table",
            payload.len() - d.pos
        )));
    }

    let plan = ExecPlan {
        signature,
        input,
        output,
        max_batch,
        params,
        steps,
        arena: vec![0.0; arena_len],
        out_offset,
        qweights,
        qscales,
        device: None,
    };
    validate(&plan)?;
    Ok(plan)
}

/// Semantic validation of a decoded plan: every arena slot, parameter range
/// and geometry a step will touch is bounds-checked against the artifact's
/// own arena/parameter tables, and same-dispatch buffers are checked
/// disjoint, so [`ExecPlan::run`] on a loaded plan can never panic — a lying
/// artifact fails here with [`GraphError::Malformed`] instead.
fn validate(plan: &ExecPlan) -> Result<()> {
    let mb = plan.max_batch;
    if mb == 0 {
        return Err(GraphError::Malformed("max_batch must be at least 1".into()));
    }
    // Each quantized weight replaces exactly one f32 parameter (biases stay
    // f32; scales are extra metadata), so the signature's parameter count —
    // the hot-swap identity — is conserved across quantization.
    let quantized = plan.steps.iter().any(|s| s.is_quantized());
    if quantized {
        let total = plan.params.len().checked_add(plan.qweights.len());
        if total != Some(plan.signature.param_len()) {
            return Err(GraphError::Malformed(format!(
                "parameter table ({}) plus quantized weights ({}) must equal the \
                 signature's {} parameters",
                plan.params.len(),
                plan.qweights.len(),
                plan.signature.param_len()
            )));
        }
    } else {
        if plan.params.len() != plan.signature.param_len() {
            return Err(GraphError::Malformed(format!(
                "parameter table holds {} values but the signature records {}",
                plan.params.len(),
                plan.signature.param_len()
            )));
        }
        if !plan.qweights.is_empty() || !plan.qscales.is_empty() {
            return Err(GraphError::Malformed(
                "quantized tables present but no step references them".into(),
            ));
        }
    }
    if let Some(bad) = plan.qscales.iter().find(|s| !s.is_finite() || **s <= 0.0) {
        return Err(GraphError::Malformed(format!(
            "dequantization scale {bad} is not a positive finite value"
        )));
    }
    if plan.steps.is_empty() {
        return Err(GraphError::Malformed("plan has no steps".into()));
    }
    let arena_len = plan.arena.len();
    let in_len = plan.input.len();

    let slot = |what: &str, offset: usize, per_sample: usize| -> Result<(usize, usize)> {
        let total = per_sample
            .checked_mul(mb)
            .and_then(|n| n.checked_add(offset))
            .ok_or_else(|| GraphError::Malformed(format!("{what} slot size overflows")))?;
        if total > arena_len {
            return Err(GraphError::Malformed(format!(
                "{what} slot {offset}+{mb}*{per_sample} exceeds the arena ({arena_len})"
            )));
        }
        Ok((offset, mb * per_sample))
    };
    let table_range =
        |what: &str, table: &str, len: usize, r: &Range<usize>, expected: usize| -> Result<()> {
            if r.end > len {
                return Err(GraphError::Malformed(format!(
                    "{what} range {r:?} exceeds the {table} table ({len})"
                )));
            }
            if r.len() != expected {
                return Err(GraphError::Malformed(format!(
                    "{what} range {r:?} holds {} values, geometry implies {expected}",
                    r.len()
                )));
            }
            Ok(())
        };
    let params_range = |what: &str, r: &Range<usize>, expected: usize| -> Result<()> {
        table_range(what, "parameter", plan.params.len(), r, expected)
    };
    let qweights_range = |what: &str, r: &Range<usize>, expected: usize| -> Result<()> {
        table_range(what, "quantized-weight", plan.qweights.len(), r, expected)
    };
    let qscales_range = |what: &str, r: &Range<usize>, expected: usize| -> Result<()> {
        table_range(what, "scale", plan.qscales.len(), r, expected)
    };
    let src_slot = |what: &str, src: &Src, per_sample: usize| -> Result<Option<(usize, usize)>> {
        match src {
            Src::Input => {
                if per_sample != in_len {
                    return Err(GraphError::Malformed(format!(
                        "{what} reads {per_sample} input values per sample, input meta has {in_len}"
                    )));
                }
                Ok(None)
            }
            Src::Arena { offset } => slot(what, *offset, per_sample).map(Some),
        }
    };
    let disjoint = |what: &str, regions: &[(usize, usize)]| -> Result<()> {
        let mut sorted = regions.to_vec();
        sorted.sort_by_key(|&(off, _)| off);
        for pair in sorted.windows(2) {
            let (a_off, a_len) = pair[0];
            let (b_off, _) = pair[1];
            if a_off + a_len > b_off {
                return Err(GraphError::Malformed(format!("{what} uses overlapping arena slots")));
            }
        }
        Ok(())
    };

    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Conv2d {
                spec,
                h,
                w,
                src,
                src_len,
                cols_offset,
                cols_len,
                dst_offset,
                dst_len,
                weight,
                bias,
                ..
            } => {
                let what = format!("step {i} (conv2d)");
                let (out_h, out_w) = spec
                    .output_size(*h, *w)
                    .map_err(|e| GraphError::Malformed(format!("{what}: {e}")))?;
                let n_cols = out_h * out_w;
                if *src_len != spec.in_channels * h * w {
                    return Err(GraphError::Malformed(format!("{what}: src_len mismatch")));
                }
                if *cols_len != spec.in_channels * spec.kernel * spec.kernel * n_cols {
                    return Err(GraphError::Malformed(format!("{what}: cols_len mismatch")));
                }
                if *dst_len != spec.out_channels * n_cols {
                    return Err(GraphError::Malformed(format!("{what}: dst_len mismatch")));
                }
                params_range(&what, weight, spec.weight_len())?;
                params_range(&what, bias, spec.out_channels)?;
                let mut regions = vec![
                    slot(&what, *cols_offset, *cols_len)?,
                    slot(&what, *dst_offset, *dst_len)?,
                ];
                if let Some(r) = src_slot(&what, src, *src_len)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::Conv1x1 {
                spec, h, w, src, src_len, dst_offset, dst_len, weight, bias, ..
            } => {
                let what = format!("step {i} (conv1x1)");
                if spec.kernel != 1 || spec.stride != 1 || spec.padding != 0 {
                    return Err(GraphError::Malformed(format!(
                        "{what}: collapsed conv must be 1x1/stride-1/unpadded"
                    )));
                }
                if *src_len != spec.in_channels * h * w {
                    return Err(GraphError::Malformed(format!("{what}: src_len mismatch")));
                }
                if *dst_len != spec.out_channels * h * w {
                    return Err(GraphError::Malformed(format!("{what}: dst_len mismatch")));
                }
                params_range(&what, weight, spec.weight_len())?;
                params_range(&what, bias, spec.out_channels)?;
                let mut regions = vec![slot(&what, *dst_offset, *dst_len)?];
                if let Some(r) = src_slot(&what, src, *src_len)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::Linear { in_features, out_features, src, dst_offset, weight, bias, .. } => {
                let what = format!("step {i} (linear)");
                params_range(&what, weight, in_features * out_features)?;
                params_range(&what, bias, *out_features)?;
                let mut regions = vec![slot(&what, *dst_offset, *out_features)?];
                if let Some(r) = src_slot(&what, src, *in_features)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::Relu { src, len, dst_offset } => {
                let what = format!("step {i} (relu)");
                let mut regions = vec![slot(&what, *dst_offset, *len)?];
                if let Some(r) = src_slot(&what, src, *len)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::MaxPool2d { window, c, h, w, src, src_len, dst_offset, dst_len } => {
                let what = format!("step {i} (maxpool2d)");
                if *window == 0 || *h < *window || *w < *window {
                    return Err(GraphError::Malformed(format!(
                        "{what}: window {window} incompatible with input {h}x{w}"
                    )));
                }
                if *src_len != c * h * w {
                    return Err(GraphError::Malformed(format!("{what}: src_len mismatch")));
                }
                if *dst_len != c * (h / window) * (w / window) {
                    return Err(GraphError::Malformed(format!("{what}: dst_len mismatch")));
                }
                let mut regions = vec![slot(&what, *dst_offset, *dst_len)?];
                if let Some(r) = src_slot(&what, src, *src_len)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::QConv2d {
                spec,
                h,
                w,
                src,
                src_len,
                dst_offset,
                dst_len,
                weight,
                scale,
                bias,
                ..
            } => {
                let what = format!("step {i} (qconv2d)");
                let (out_h, out_w) = spec
                    .output_size(*h, *w)
                    .map_err(|e| GraphError::Malformed(format!("{what}: {e}")))?;
                if *src_len != spec.in_channels * h * w {
                    return Err(GraphError::Malformed(format!("{what}: src_len mismatch")));
                }
                if *dst_len != spec.out_channels * out_h * out_w {
                    return Err(GraphError::Malformed(format!("{what}: dst_len mismatch")));
                }
                qweights_range(&what, weight, spec.weight_len())?;
                qscales_range(&what, scale, spec.out_channels)?;
                params_range(&what, bias, spec.out_channels)?;
                let mut regions = vec![slot(&what, *dst_offset, *dst_len)?];
                if let Some(r) = src_slot(&what, src, *src_len)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
            Step::QLinear {
                in_features,
                out_features,
                src,
                dst_offset,
                weight,
                scale,
                bias,
                ..
            } => {
                let what = format!("step {i} (qlinear)");
                qweights_range(&what, weight, in_features * out_features)?;
                qscales_range(&what, scale, *out_features)?;
                params_range(&what, bias, *out_features)?;
                let mut regions = vec![slot(&what, *dst_offset, *out_features)?];
                if let Some(r) = src_slot(&what, src, *in_features)? {
                    regions.push(r);
                }
                disjoint(&what, &regions)?;
            }
        }
    }

    let out_total = plan
        .output
        .len()
        .checked_mul(mb)
        .and_then(|n| n.checked_add(plan.out_offset))
        .ok_or_else(|| GraphError::Malformed("output slot size overflows".into()))?;
    if out_total > arena_len {
        return Err(GraphError::Malformed(format!(
            "output slot {}+{mb}*{} exceeds the arena ({arena_len})",
            plan.out_offset,
            plan.output.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl ExecPlan {
    /// Serializes the plan into a self-contained `.fplan` byte buffer
    /// (header, payload, checksum — see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = encode_payload(self);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&FPLAN_MAGIC);
        out.extend_from_slice(&FPLAN_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes a plan from `.fplan` bytes, verifying magic, version,
    /// length, checksum and full semantic consistency.
    ///
    /// # Errors
    ///
    /// [`GraphError::BadMagic`], [`GraphError::UnsupportedVersion`],
    /// [`GraphError::Truncated`], [`GraphError::ChecksumMismatch`] or
    /// [`GraphError::Malformed`], depending on what is wrong; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExecPlan> {
        if bytes.len() < HEADER_LEN {
            return Err(GraphError::Truncated { needed: HEADER_LEN, available: bytes.len() });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != FPLAN_MAGIC {
            return Err(GraphError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if !(FPLAN_MIN_VERSION..=FPLAN_VERSION).contains(&version) {
            return Err(GraphError::UnsupportedVersion {
                found: version,
                supported: FPLAN_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len).map_err(|_| {
            GraphError::Malformed(format!("payload length {payload_len} exceeds the address space"))
        })?;
        let expected_total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or_else(|| GraphError::Malformed("payload length overflows".into()))?;
        if bytes.len() < expected_total {
            return Err(GraphError::Truncated { needed: expected_total, available: bytes.len() });
        }
        if bytes.len() > expected_total {
            return Err(GraphError::Malformed(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - expected_total
            )));
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let stored =
            u64::from_le_bytes(bytes[expected_total - CHECKSUM_LEN..].try_into().expect("8 bytes"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(GraphError::ChecksumMismatch { stored, computed });
        }
        decode_payload(payload, version)
    }

    /// Writes the plan to `path` as a `.fplan` artifact.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Io`] when the file cannot be written.
    pub fn write_plan(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        fs::write(path, self.to_bytes())
            .map_err(|e| GraphError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads a `.fplan` artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Io`] when the file cannot be read, and any
    /// [`Self::from_bytes`] error for a corrupt or incompatible artifact.
    pub fn read_plan(path: impl AsRef<Path>) -> Result<ExecPlan> {
        let path = path.as_ref();
        let bytes = fs::read(path)
            .map_err(|e| GraphError::Io(format!("reading {}: {e}", path.display())))?;
        ExecPlan::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use fuse_tensor::Tensor;

    use super::*;
    use crate::graph::Graph;
    use crate::meta::TensorMeta;

    fn pooled_plan() -> ExecPlan {
        let cw = Tensor::randn(&[3, 2, 3, 3], 0.5, 71);
        let cb = Tensor::randn(&[3], 0.1, 72);
        let w = Tensor::randn(&[4, 12], 0.2, 73);
        let b = Tensor::randn(&[4], 0.1, 74);
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_conv2d("conv", Conv2dSpec::same(2, 3, 3), cw.as_slice(), cb.as_slice()).unwrap();
        g.push_relu("relu").unwrap();
        g.push_maxpool2d("pool", 2).unwrap();
        g.push_flatten("flatten").unwrap();
        g.push_linear("fc", 12, 4, w.as_slice(), b.as_slice()).unwrap();
        g.compile(3).unwrap()
    }

    #[test]
    fn round_trip_preserves_every_field_and_every_bit() {
        let plan = pooled_plan();
        let bytes = plan.to_bytes();
        let mut loaded = ExecPlan::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.signature, plan.signature);
        assert_eq!(loaded.input, plan.input);
        assert_eq!(loaded.output, plan.output);
        assert_eq!(loaded.max_batch, plan.max_batch);
        assert_eq!(loaded.steps, plan.steps);
        assert_eq!(loaded.out_offset, plan.out_offset);
        assert_eq!(loaded.arena.len(), plan.arena.len());
        let same_bits =
            loaded.params.iter().zip(&plan.params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "parameters must survive bit-exactly");

        let mut original = plan;
        let input = Tensor::randn(&[3, 2, 4, 4], 1.0, 75);
        assert_eq!(
            loaded.run(input.as_slice(), 3).unwrap(),
            original.run(input.as_slice(), 3).unwrap()
        );
    }

    #[test]
    fn header_corruptions_yield_the_matching_typed_errors() {
        let bytes = pooled_plan().to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(ExecPlan::from_bytes(&bad_magic), Err(GraphError::BadMagic { .. })));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            ExecPlan::from_bytes(&bad_version),
            Err(GraphError::UnsupportedVersion { found: 99, supported: FPLAN_VERSION })
        ));

        assert!(matches!(
            ExecPlan::from_bytes(&bytes[..bytes.len() - 1]),
            Err(GraphError::Truncated { .. })
        ));
        assert!(matches!(ExecPlan::from_bytes(&[]), Err(GraphError::Truncated { .. })));

        let mut flipped = bytes.clone();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - CHECKSUM_LEN) / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(ExecPlan::from_bytes(&flipped), Err(GraphError::ChecksumMismatch { .. })));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(ExecPlan::from_bytes(&trailing), Err(GraphError::Malformed(_))));
    }

    /// Rebuilds a full artifact around a (possibly modified) payload,
    /// re-stamping length and checksum so payload-level corruptions reach
    /// the decoder instead of tripping the checksum.
    fn reassemble(payload: &[u8], version: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&FPLAN_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out
    }

    fn payload_of(bytes: &[u8]) -> Vec<u8> {
        bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN].to_vec()
    }

    #[test]
    fn quantized_plan_round_trips_at_v2() {
        let plan = pooled_plan().quantize().unwrap();
        let bytes = plan.to_bytes();
        let mut loaded = ExecPlan::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.steps, plan.steps);
        assert_eq!(loaded.qweights, plan.qweights);
        let same_bits =
            loaded.qscales.iter().zip(&plan.qscales).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "scales must survive bit-exactly");

        let mut original = plan;
        let input = Tensor::randn(&[2, 2, 4, 4], 1.0, 77);
        assert_eq!(
            loaded.run(input.as_slice(), 2).unwrap(),
            original.run(input.as_slice(), 2).unwrap(),
            "host-device execution of a loaded plan is deterministic"
        );
    }

    #[test]
    fn v1_artifacts_without_quantized_sections_still_decode() {
        let plan = pooled_plan();
        let bytes = plan.to_bytes();
        // A float plan's v2 payload ends with the two empty quantized
        // sections (8-byte zero counts each); stripping them yields the
        // exact v1 payload layout.
        let payload = payload_of(&bytes);
        assert_eq!(&payload[payload.len() - 16..], &[0u8; 16]);
        let v1 = reassemble(&payload[..payload.len() - 16], 1);
        let mut loaded = ExecPlan::from_bytes(&v1).unwrap();
        let input = Tensor::randn(&[1, 2, 4, 4], 1.0, 78);
        let mut original = plan;
        assert_eq!(
            loaded.run(input.as_slice(), 1).unwrap(),
            original.run(input.as_slice(), 1).unwrap()
        );
    }

    #[test]
    fn quantized_tags_in_a_v1_artifact_are_malformed() {
        let plan = pooled_plan().quantize().unwrap();
        let payload = payload_of(&plan.to_bytes());
        let v1 = reassemble(&payload, 1);
        assert!(matches!(ExecPlan::from_bytes(&v1), Err(GraphError::Malformed(_))));
    }

    #[test]
    fn truncated_scale_table_is_a_typed_truncation() {
        let plan = pooled_plan().quantize().unwrap();
        let payload = payload_of(&plan.to_bytes());
        // Cut into the trailing scale table: the count no longer fits.
        let cut = reassemble(&payload[..payload.len() - 2], FPLAN_VERSION);
        assert!(matches!(ExecPlan::from_bytes(&cut), Err(GraphError::Truncated { .. })));
    }

    #[test]
    fn non_positive_or_non_finite_scales_are_malformed() {
        let plan = pooled_plan().quantize().unwrap();
        let bytes = plan.to_bytes();
        for bad in [f32::NAN, 0.0, -1.0] {
            let mut payload = payload_of(&bytes);
            let n = payload.len();
            payload[n - 4..].copy_from_slice(&bad.to_bits().to_le_bytes());
            let forged = reassemble(&payload, FPLAN_VERSION);
            match ExecPlan::from_bytes(&forged) {
                Err(GraphError::Malformed(msg)) => {
                    assert!(msg.contains("positive finite"), "unexpected message: {msg}")
                }
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn versions_outside_the_supported_range_are_rejected() {
        let payload = payload_of(&pooled_plan().to_bytes());
        for bad in [0u32, FPLAN_VERSION + 1, 99] {
            assert!(matches!(
                ExecPlan::from_bytes(&reassemble(&payload, bad)),
                Err(GraphError::UnsupportedVersion { found, supported: FPLAN_VERSION })
                    if found == bad
            ));
        }
    }

    #[test]
    fn write_and_read_plan_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("fuse_graph_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fplan");
        let plan = pooled_plan();
        plan.write_plan(&path).unwrap();
        let mut loaded = ExecPlan::read_plan(&path).unwrap();
        let input = Tensor::randn(&[1, 2, 4, 4], 1.0, 76);
        let mut original = plan;
        assert_eq!(
            loaded.run(input.as_slice(), 1).unwrap(),
            original.run(input.as_slice(), 1).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(ExecPlan::read_plan(&path), Err(GraphError::Io(_))));
    }
}
