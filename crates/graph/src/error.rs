//! Typed errors for graph construction, compilation and execution.

use std::fmt;

use fuse_tensor::TensorError;

/// Errors produced while building, compiling or running an op graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A shape or parameter-length mismatch while building or validating the
    /// graph.
    Shape(String),
    /// The graph (or an op in it) cannot be compiled to an [`crate::ExecPlan`].
    Unsupported(String),
    /// [`crate::ExecPlan::run`] was called with a batch outside
    /// `1..=max_batch`.
    BatchOutOfRange {
        /// Requested batch size.
        batch: usize,
        /// The plan's compiled capacity.
        max_batch: usize,
    },
    /// [`crate::ExecPlan::run`] was called with an input slice whose length
    /// does not match `batch * input_len`.
    InputLenMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// An underlying tensor kernel rejected the operation.
    Tensor(TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape(msg) => write!(f, "graph shape error: {msg}"),
            GraphError::Unsupported(msg) => write!(f, "graph not compilable: {msg}"),
            GraphError::BatchOutOfRange { batch, max_batch } => {
                write!(f, "batch {batch} outside the plan's capacity 1..={max_batch}")
            }
            GraphError::InputLenMismatch { expected, actual } => {
                write!(f, "plan input has {actual} elements, expected {expected}")
            }
            GraphError::Tensor(e) => write!(f, "tensor kernel error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}
