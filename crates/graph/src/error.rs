//! Typed errors for graph construction, compilation and execution.

use std::fmt;

use fuse_tensor::TensorError;

/// Errors produced while building, compiling or running an op graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A shape or parameter-length mismatch while building or validating the
    /// graph.
    Shape(String),
    /// The graph (or an op in it) cannot be compiled to an [`crate::ExecPlan`].
    Unsupported(String),
    /// [`crate::ExecPlan::run`] was called with a batch outside
    /// `1..=max_batch`.
    BatchOutOfRange {
        /// Requested batch size.
        batch: usize,
        /// The plan's compiled capacity.
        max_batch: usize,
    },
    /// [`crate::ExecPlan::run`] was called with an input slice whose length
    /// does not match `batch * input_len`.
    InputLenMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// An underlying tensor kernel rejected the operation.
    Tensor(TensorError),
    /// Reading or writing a plan artifact failed at the I/O layer.
    Io(String),
    /// The file is not a plan artifact (wrong magic bytes).
    BadMagic {
        /// The first four bytes actually found.
        found: [u8; 4],
    },
    /// The artifact was written with a format version this build cannot read.
    UnsupportedVersion {
        /// Version stamped in the artifact header.
        found: u32,
        /// The newest version this build supports (it reads `1..=supported`).
        supported: u32,
    },
    /// The artifact payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Checksum stored in the artifact trailer.
        stored: u64,
        /// Checksum recomputed over the payload as read.
        computed: u64,
    },
    /// The artifact ended before a complete record could be decoded.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes remaining in the artifact.
        available: usize,
    },
    /// The artifact decoded structurally but describes an invalid plan
    /// (out-of-range offsets, inconsistent lengths, unknown tags, ...).
    Malformed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape(msg) => write!(f, "graph shape error: {msg}"),
            GraphError::Unsupported(msg) => write!(f, "graph not compilable: {msg}"),
            GraphError::BatchOutOfRange { batch, max_batch } => {
                write!(f, "batch {batch} outside the plan's capacity 1..={max_batch}")
            }
            GraphError::InputLenMismatch { expected, actual } => {
                write!(f, "plan input has {actual} elements, expected {expected}")
            }
            GraphError::Tensor(e) => write!(f, "tensor kernel error: {e}"),
            GraphError::Io(msg) => write!(f, "plan artifact i/o error: {msg}"),
            GraphError::BadMagic { found } => {
                write!(f, "not a plan artifact: magic bytes {found:?} != b\"FPLN\"")
            }
            GraphError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "plan artifact format v{found} unsupported (this build reads v1..=v{supported})"
                )
            }
            GraphError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "plan artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            GraphError::Truncated { needed, available } => {
                write!(f, "plan artifact truncated: needed {needed} more bytes, found {available}")
            }
            GraphError::Malformed(msg) => write!(f, "malformed plan artifact: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}
