//! Static tensor metadata: per-sample shapes and element types.

use std::fmt;

/// Element type of a value flowing through the graph.
///
/// Only `f32` exists today — the variant is here so checkpoints, plans and
/// signatures stay forward-compatible when quantised execution lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 float, the only dtype the kernels implement.
    F32,
}

/// Static **per-sample** shape and dtype of a value in the op graph.
///
/// The batch dimension is deliberately absent: plans are compiled for a
/// maximum batch and executed with any batch up to it, so every shape in the
/// IR describes one sample (`[C, H, W]` for feature maps, `[F]` for flat
/// vectors).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorMeta {
    dims: Vec<usize>,
    dtype: DType,
}

impl TensorMeta {
    /// An `f32` value of the given per-sample shape.
    pub fn f32(dims: &[usize]) -> Self {
        TensorMeta { dims: dims.to_vec(), dtype: DType::F32 }
    }

    /// The per-sample dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of elements in one sample (product of [`Self::dims`]).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` when a sample holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for TensorMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        match self.dtype {
            DType::F32 => write!(f, "f32[{}]", dims.join("x")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_the_dim_product() {
        assert_eq!(TensorMeta::f32(&[5, 8, 8]).len(), 320);
        assert_eq!(TensorMeta::f32(&[]).len(), 1, "rank-0 holds one scalar");
        assert_eq!(TensorMeta::f32(&[3, 0]).len(), 0);
        assert!(TensorMeta::f32(&[3, 0]).is_empty());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorMeta::f32(&[5, 8, 8]).to_string(), "f32[5x8x8]");
    }
}
