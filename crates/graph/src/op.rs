//! Typed graph nodes and the operations they compute.

use std::ops::Range;

use fuse_tensor::Conv2dSpec;

use crate::meta::TensorMeta;

/// Stable identifier of a node inside one [`crate::Graph`].
///
/// Ids are assigned at push time and survive rewrite passes (a fused node
/// keeps its id; references to removed nodes are redirected), so they can be
/// held across compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Where a node reads its operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRef {
    /// The graph's external input (the batch the caller passes to
    /// [`crate::ExecPlan::run`]).
    Input,
    /// The output of another node.
    Node(NodeId),
}

/// The operation a [`Node`] computes.
///
/// Builder-facing constructors never set the `fused_relu` flags or produce
/// [`OpKind::Conv1x1Gemm`]; those forms are introduced by the rewrite passes
/// during [`crate::Graph::compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// General 2-D convolution (im2col + GEMM + bias broadcast).
    Conv2d {
        /// Kernel geometry.
        spec: Conv2dSpec,
        /// Apply `x.max(0.0)` in the same dispatch, directly after the bias.
        fused_relu: bool,
    },
    /// A 1×1 / stride-1 / unpadded convolution whose im2col lowering was
    /// collapsed into a direct GEMM on the input (the lowering is the
    /// identity for this geometry, so eliding it is pure data-movement
    /// removal).
    Conv1x1Gemm {
        /// Kernel geometry (`kernel == 1`, `stride == 1`, `padding == 0`).
        spec: Conv2dSpec,
        /// Apply `x.max(0.0)` in the same dispatch, directly after the bias.
        fused_relu: bool,
    },
    /// Fully-connected layer `y = W·x + b` with `W` stored `[out x in]`.
    Linear {
        /// Input features per sample.
        in_features: usize,
        /// Output features per sample.
        out_features: usize,
        /// Apply `x.max(0.0)` in the same dispatch, directly after the bias.
        fused_relu: bool,
    },
    /// Element-wise `x.max(0.0)`.
    Relu,
    /// 2-D max pooling over non-overlapping `window × window` tiles (stride
    /// equal to the window). Order-sensitive per the reproducibility
    /// contract: executed through the backend's first-maximum scan, so it is
    /// never a fusion candidate.
    MaxPool2d {
        /// Square pooling window edge (also the stride).
        window: usize,
    },
    /// Reshape `[C, H, W, ...]` to `[C*H*W*...]` — pure metadata, compiles to
    /// a buffer alias, never a copy.
    Flatten,
    /// Pass-through (e.g. dropout at inference) — compiles to a buffer alias.
    Identity,
}

impl OpKind {
    /// `true` for ops a trailing ReLU can fuse into.
    pub(crate) fn supports_relu_fusion(&self) -> bool {
        matches!(self, OpKind::Conv2d { .. } | OpKind::Conv1x1Gemm { .. } | OpKind::Linear { .. })
    }

    /// `true` for ops that only re-interpret their input buffer.
    pub(crate) fn is_alias(&self) -> bool {
        matches!(self, OpKind::Flatten | OpKind::Identity)
    }
}

/// One typed node in a [`crate::Graph`].
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    pub(crate) op: OpKind,
    pub(crate) input: ValueRef,
    pub(crate) output: TensorMeta,
    /// Range of this node's weights inside the graph's flat parameter
    /// buffer; empty for parameterless ops.
    pub(crate) weight: Range<usize>,
    /// Range of this node's bias inside the graph's flat parameter buffer;
    /// empty for parameterless ops.
    pub(crate) bias: Range<usize>,
}

impl Node {
    /// The node's stable id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The layer name the node was pushed with (checkpoint-compatible).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation this node computes.
    pub fn op(&self) -> &OpKind {
        &self.op
    }

    /// Where the node reads its operand from.
    pub fn input(&self) -> ValueRef {
        self.input
    }

    /// Static per-sample shape of the node's output.
    pub fn output(&self) -> &TensorMeta {
        &self.output
    }

    /// Total parameter count (weights + bias) owned by this node.
    pub fn param_len(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}
