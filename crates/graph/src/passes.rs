//! Rewrite passes applied during compilation.
//!
//! Both passes obey the fusion contract in `REPRODUCIBILITY.md`: a rewrite
//! may remove dispatch overhead or pure data movement, but must leave the
//! per-element operation sequence — and therefore every output bit —
//! unchanged.

use std::collections::HashMap;

use crate::op::{Node, NodeId, OpKind, ValueRef};

/// Runs all rewrite passes in order and returns the rewritten chain.
pub(crate) fn optimize(nodes: Vec<Node>) -> Vec<Node> {
    fuse_relu(collapse_1x1(nodes))
}

/// Rewrites 1×1/stride-1/unpadded convolutions to the direct-GEMM form.
///
/// For this geometry the im2col matrix of a sample *is* the sample, so the
/// GEMM sees bit-identical operands either way; collapsing only elides the
/// copy.
fn collapse_1x1(mut nodes: Vec<Node>) -> Vec<Node> {
    for node in &mut nodes {
        if let OpKind::Conv2d { spec, fused_relu } = node.op {
            if spec.kernel == 1 && spec.stride == 1 && spec.padding == 0 {
                node.op = OpKind::Conv1x1Gemm { spec, fused_relu };
            }
        }
    }
    nodes
}

/// Fuses a ReLU into its producer when the producer supports it, is not
/// already fused, and the ReLU is the producer's only consumer.
///
/// The fused dispatch applies the same element-wise `x.max(0.0)` directly
/// after the bias, so per-element operation order is unchanged. References to
/// the removed ReLU node are redirected to the producer.
fn fuse_relu(nodes: Vec<Node>) -> Vec<Node> {
    let mut consumers: HashMap<NodeId, usize> = HashMap::new();
    for node in &nodes {
        if let ValueRef::Node(id) = node.input {
            *consumers.entry(id).or_insert(0) += 1;
        }
    }

    let mut redirect: HashMap<NodeId, NodeId> = HashMap::new();
    let mut out: Vec<Node> = Vec::with_capacity(nodes.len());
    for mut node in nodes {
        if let ValueRef::Node(id) = node.input {
            if let Some(&target) = redirect.get(&id) {
                node.input = ValueRef::Node(target);
            }
        }
        if matches!(node.op, OpKind::Relu) {
            if let ValueRef::Node(pid) = node.input {
                let sole_consumer = consumers.get(&node.id).copied().unwrap_or(0) <= 1
                    && consumers.get(&pid).copied().unwrap_or(0) == 1;
                let producer = out.iter_mut().find(|n| n.id == pid);
                if let Some(producer) = producer {
                    if sole_consumer && producer.op.supports_relu_fusion() {
                        let fused = match &mut producer.op {
                            OpKind::Conv2d { fused_relu, .. }
                            | OpKind::Conv1x1Gemm { fused_relu, .. }
                            | OpKind::Linear { fused_relu, .. } => fused_relu,
                            _ => unreachable!("supports_relu_fusion checked above"),
                        };
                        if !*fused {
                            *fused = true;
                            redirect.insert(node.id, pid);
                            continue;
                        }
                    }
                }
            }
        }
        out.push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use fuse_tensor::Conv2dSpec;

    use super::*;
    use crate::graph::Graph;
    use crate::meta::TensorMeta;

    fn chain() -> Graph {
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_conv2d("conv", Conv2dSpec::same(2, 3, 3), &[0.0; 54], &[0.0; 3]).unwrap();
        g.push_relu("relu").unwrap();
        g.push_flatten("flatten").unwrap();
        g.push_linear("fc", 48, 5, &[0.0; 240], &[0.0; 5]).unwrap();
        g
    }

    #[test]
    fn relu_fuses_into_its_producer() {
        let nodes = optimize(chain().nodes);
        assert_eq!(nodes.len(), 3, "the ReLU node must be folded away");
        assert!(matches!(nodes[0].op, OpKind::Conv2d { fused_relu: true, .. }));
        // The flatten consumed the relu; it must now read the conv directly.
        assert_eq!(nodes[1].input, ValueRef::Node(nodes[0].id));
    }

    #[test]
    fn one_by_one_convs_collapse_to_direct_gemm() {
        let mut g = Graph::new(TensorMeta::f32(&[3, 4, 4]));
        let spec = Conv2dSpec { in_channels: 3, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        g.push_conv2d("pw", spec, &[0.0; 6], &[0.0; 2]).unwrap();
        g.push_relu("relu").unwrap();
        let nodes = optimize(g.nodes);
        assert_eq!(nodes.len(), 1);
        assert!(matches!(nodes[0].op, OpKind::Conv1x1Gemm { fused_relu: true, .. }));
    }

    #[test]
    fn trailing_relu_still_fuses() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_linear("fc", 4, 2, &[0.0; 8], &[0.0; 2]).unwrap();
        g.push_relu("relu").unwrap();
        let nodes = optimize(g.nodes);
        assert_eq!(nodes.len(), 1);
        assert!(matches!(nodes[0].op, OpKind::Linear { fused_relu: true, .. }));
    }

    #[test]
    fn double_relu_keeps_the_second_standalone() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_linear("fc", 4, 2, &[0.0; 8], &[0.0; 2]).unwrap();
        g.push_relu("relu1").unwrap();
        g.push_relu("relu2").unwrap();
        let nodes = optimize(g.nodes);
        assert_eq!(nodes.len(), 2);
        assert!(matches!(nodes[0].op, OpKind::Linear { fused_relu: true, .. }));
        assert!(matches!(nodes[1].op, OpKind::Relu));
        // The survivor reads the fused producer, not the removed node.
        assert_eq!(nodes[1].input, ValueRef::Node(nodes[0].id));
    }

    #[test]
    fn relu_on_the_graph_input_stays_standalone() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_relu("relu").unwrap();
        let nodes = optimize(g.nodes);
        assert_eq!(nodes.len(), 1);
        assert!(matches!(nodes[0].op, OpKind::Relu));
    }
}
