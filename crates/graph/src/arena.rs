//! Compile-time bump-arena planning with liveness-based slot reuse.
//!
//! The planner runs only during [`crate::Graph::compile`]: it assigns every
//! intermediate buffer an offset into one flat `f32` arena, reusing the slot
//! of any buffer whose last consumer has already been scheduled. At run time
//! the plan just indexes the pre-sized arena — no allocator is involved.

/// One region of the planned arena.
#[derive(Debug, Clone)]
struct Slot {
    offset: usize,
    len: usize,
    free: bool,
}

/// Offline allocator producing offsets into a single bump arena.
#[derive(Debug, Default)]
pub(crate) struct ArenaPlanner {
    slots: Vec<Slot>,
    total: usize,
}

impl ArenaPlanner {
    pub(crate) fn new() -> Self {
        ArenaPlanner::default()
    }

    /// Reserves `len` elements and returns the region's offset.
    ///
    /// Best-fit reuse: the smallest free slot that can hold `len` is taken
    /// before the arena grows. Slots keep their original size, so a reused
    /// region may be larger than requested — callers slice what they need.
    pub(crate) fn alloc(&mut self, len: usize) -> usize {
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.free && s.len >= len)
            .min_by_key(|(_, s)| s.len);
        if let Some((i, _)) = best {
            self.slots[i].free = false;
            return self.slots[i].offset;
        }
        let offset = self.total;
        self.total += len;
        self.slots.push(Slot { offset, len, free: false });
        offset
    }

    /// Returns the slot starting at `offset` to the free list.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not name a live slot (a planner bug).
    pub(crate) fn free(&mut self, offset: usize) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.offset == offset && !s.free)
            .expect("freed offset must name a live slot");
        slot.free = true;
    }

    /// Total arena length the plan must allocate once, up front.
    pub(crate) fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freed_slots_are_reused_instead_of_growing() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(100);
        p.free(a);
        let b = p.alloc(80);
        assert_eq!(b, a, "a freed slot that fits must be reused");
        assert_eq!(p.total(), 100);
    }

    #[test]
    fn best_fit_picks_the_smallest_sufficient_slot() {
        let mut p = ArenaPlanner::new();
        let big = p.alloc(100);
        let small = p.alloc(50);
        p.free(big);
        p.free(small);
        assert_eq!(p.alloc(40), small, "best fit prefers the tighter slot");
        assert_eq!(p.alloc(90), big);
        assert_eq!(p.total(), 150);
    }

    #[test]
    fn arena_grows_when_nothing_fits() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(10);
        p.free(a);
        let b = p.alloc(20);
        assert_eq!(b, 10, "too-small free slots must not be reused");
        assert_eq!(p.total(), 30);
    }

    #[test]
    #[should_panic(expected = "live slot")]
    fn double_free_is_a_planner_bug() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(10);
        p.free(a);
        p.free(a);
    }
}
