//! Compiled execution plans: topological scheduling, arena placement and
//! zero-allocation execution.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use fuse_quant::{dequantize_rows, quantize_rows, BufferId, DeviceMemory, HostDevice};
use fuse_tensor::{
    conv1x1_forward_into_relaxed, conv2d_forward_into_relaxed, linalg, maxpool2d_forward_into,
    Conv2dSpec,
};

use crate::arena::ArenaPlanner;
use crate::error::GraphError;
use crate::graph::{Graph, ShapeSignature};
use crate::meta::TensorMeta;
use crate::op::{NodeId, OpKind, ValueRef};
use crate::passes;
use crate::Result;

/// Where a step reads its batched operand from.
///
/// `pub(crate)` so the `artifact` module can serialize plans; not part of the
/// public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// The external input slice passed to [`ExecPlan::run`].
    Input,
    /// A region of the plan's arena starting at `offset`.
    Arena { offset: usize },
}

/// One pre-scheduled kernel dispatch. All lengths are per sample; at run
/// time each buffer's active region is the `batch`-prefix of its slot.
///
/// `pub(crate)` so the `artifact` module can serialize plans; not part of the
/// public API.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Step {
    Conv2d {
        spec: Conv2dSpec,
        h: usize,
        w: usize,
        src: Src,
        src_len: usize,
        cols_offset: usize,
        cols_len: usize,
        dst_offset: usize,
        dst_len: usize,
        weight: Range<usize>,
        bias: Range<usize>,
        relu: bool,
    },
    Conv1x1 {
        spec: Conv2dSpec,
        h: usize,
        w: usize,
        src: Src,
        src_len: usize,
        dst_offset: usize,
        dst_len: usize,
        weight: Range<usize>,
        bias: Range<usize>,
        relu: bool,
    },
    Linear {
        in_features: usize,
        out_features: usize,
        src: Src,
        dst_offset: usize,
        weight: Range<usize>,
        bias: Range<usize>,
        relu: bool,
    },
    Relu {
        src: Src,
        len: usize,
        dst_offset: usize,
    },
    MaxPool2d {
        window: usize,
        c: usize,
        h: usize,
        w: usize,
        src: Src,
        src_len: usize,
        dst_offset: usize,
        dst_len: usize,
    },
    /// Quantized conv2d (relaxed contract): int8 weights indexed into the
    /// plan's `qweights`, one f32 scale per output channel in `qscales`,
    /// f32 bias in `params`. Executes directly (no im2col scratch) through
    /// the plan's [`DeviceMemory`].
    QConv2d {
        spec: Conv2dSpec,
        h: usize,
        w: usize,
        src: Src,
        src_len: usize,
        dst_offset: usize,
        dst_len: usize,
        /// Range into `qweights` (int8).
        weight: Range<usize>,
        /// Range into `qscales` (one per output channel).
        scale: Range<usize>,
        /// Range into `params` (f32 bias).
        bias: Range<usize>,
        relu: bool,
    },
    /// Quantized fully-connected layer (relaxed contract); same storage
    /// split as [`Step::QConv2d`].
    QLinear {
        in_features: usize,
        out_features: usize,
        src: Src,
        dst_offset: usize,
        /// Range into `qweights` (int8).
        weight: Range<usize>,
        /// Range into `qscales` (one per output feature).
        scale: Range<usize>,
        /// Range into `params` (f32 bias).
        bias: Range<usize>,
        relu: bool,
    },
}

impl Step {
    /// Whether this step executes int8 weights through the device seam.
    pub(crate) fn is_quantized(&self) -> bool {
        matches!(self, Step::QConv2d { .. } | Step::QLinear { .. })
    }
}

/// Device-resident handles for one quantized step, in quantized-step order.
///
/// Handles live outside [`Step`] (which stays `PartialEq` and serializable);
/// they are recomputed deterministically — upload per quantized step, in step
/// order — whenever a device is (re)installed, so a plan loaded from an
/// artifact binds to a device identically to the plan that wrote it.
struct StepBuffers {
    weight: BufferId,
    scale: BufferId,
}

/// An installed execution device plus the per-step buffer handles uploaded
/// to it.
pub(crate) struct DeviceState {
    mem: Box<dyn DeviceMemory>,
    buffers: Vec<StepBuffers>,
}

/// A compiled, reusable execution plan.
///
/// Produced by [`Graph::compile`]; owns a snapshot of the model parameters
/// and a pre-sized arena holding every intermediate buffer, so steady-state
/// [`ExecPlan::run`] performs **zero heap allocations** (the serial
/// `FUSE_THREADS=1` guarantee the workspace's allocation gate pins; the
/// thread pool may box tasks when a dispatch goes parallel). Under every
/// exact-contract backend choice (`scalar`, `simd`, `auto`) output is
/// bit-identical to executing the ops unfused, for every backend × thread
/// combination — see `REPRODUCIBILITY.md`. Plans are the workspace's
/// designated **relaxed-contract surface**: float steps dispatch through the
/// relaxed tensor entry points, so explicitly opting into
/// `FUSE_BACKEND=simd-fma` serves with fused-multiply-add kernels
/// (tolerance-verified, not bit-reproducible), and [`ExecPlan::quantize`]
/// derives an int8 weight-quantized plan executing through a
/// [`DeviceMemory`].
///
/// ```
/// use fuse_graph::{Graph, TensorMeta};
///
/// let mut g = Graph::new(TensorMeta::f32(&[3]));
/// g.push_linear("sum", 3, 1, &[1.0, 1.0, 1.0], &[0.0])?;
/// let mut plan = g.compile(2)?;
///
/// // One plan, many batches: no per-call allocation, any batch ≤ max_batch.
/// assert_eq!(plan.run(&[1.0, 2.0, 3.0], 1)?, &[6.0]);
/// assert_eq!(plan.run(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2)?, &[6.0, 15.0]);
/// # Ok::<(), fuse_graph::GraphError>(())
/// ```
pub struct ExecPlan {
    pub(crate) signature: ShapeSignature,
    pub(crate) input: TensorMeta,
    pub(crate) output: TensorMeta,
    pub(crate) max_batch: usize,
    pub(crate) params: Vec<f32>,
    pub(crate) steps: Vec<Step>,
    pub(crate) arena: Vec<f32>,
    pub(crate) out_offset: usize,
    /// Int8 weight storage for quantized steps (empty on float plans).
    pub(crate) qweights: Vec<i8>,
    /// Per-output-channel dequantization scales (empty on float plans).
    pub(crate) qscales: Vec<f32>,
    /// Installed execution device for quantized steps; `None` until first
    /// run (which installs [`HostDevice`]) or [`ExecPlan::with_device`].
    pub(crate) device: Option<DeviceState>,
}

impl Graph {
    /// Compiles the graph into an [`ExecPlan`] able to serve batches of up
    /// to `max_batch` samples.
    ///
    /// Runs the rewrite passes (ReLU fusion, 1×1-conv collapse), schedules
    /// the surviving nodes topologically and plans every intermediate buffer
    /// into one arena with liveness-based slot reuse.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Shape`] for a zero `max_batch` and
    /// [`GraphError::Unsupported`] for graphs without a compute node.
    pub fn compile(self, max_batch: usize) -> Result<ExecPlan> {
        compile(self, max_batch)
    }
}

fn compile(graph: Graph, max_batch: usize) -> Result<ExecPlan> {
    if max_batch == 0 {
        return Err(GraphError::Shape("max_batch must be at least 1".into()));
    }
    let signature = graph.signature();
    let Graph { input: input_meta, nodes, params } = graph;
    let nodes = passes::optimize(nodes);
    if nodes.iter().all(|n| n.op.is_alias()) {
        return Err(GraphError::Unsupported(
            "plan needs at least one compute node; alias-only graphs serve nothing".into(),
        ));
    }

    // Consumer counts drive liveness: a buffer's slot is released once its
    // last consumer is scheduled. The chain tail gets one permanent extra
    // reference so the plan output survives the whole run.
    let mut consumers: HashMap<NodeId, usize> = HashMap::new();
    for node in &nodes {
        if let ValueRef::Node(id) = node.input {
            *consumers.entry(id).or_insert(0) += 1;
        }
    }
    let tail_id = nodes.last().expect("non-alias node exists").id;
    *consumers.entry(tail_id).or_insert(0) += 1;

    let mut planner = ArenaPlanner::new();
    let mut steps: Vec<Step> = Vec::with_capacity(nodes.len());
    let mut produced: HashMap<NodeId, (Src, TensorMeta)> = HashMap::new();
    let mut slot_refs: HashMap<usize, usize> = HashMap::new();

    for node in &nodes {
        let (src, in_meta) = match node.input {
            ValueRef::Input => (Src::Input, &input_meta),
            ValueRef::Node(id) => {
                let (src, meta) = produced.get(&id).ok_or_else(|| {
                    GraphError::Unsupported(format!(
                        "node '{}' reads a value that is not defined before it",
                        node.name
                    ))
                })?;
                (*src, meta)
            }
        };
        let n_consumers = consumers.get(&node.id).copied().unwrap_or(0);

        if node.op.is_alias() {
            // Pure metadata: the node's consumers read the source buffer
            // directly, pinning the underlying slot while they remain.
            if let Src::Arena { offset } = src {
                *slot_refs.get_mut(&offset).expect("alias source slot is live") += n_consumers;
                release(&mut slot_refs, &mut planner, offset);
            }
            produced.insert(node.id, (src, node.output.clone()));
            continue;
        }

        let dst_len = node.output.len();
        let src_len = in_meta.len();
        // Scratch and destination are allocated *before* the source slot is
        // released, so a kernel's output can never alias its input.
        let mut scratch: Option<usize> = None;
        let (step, dst_offset) = match &node.op {
            OpKind::Conv2d { spec, fused_relu } => {
                let dims = in_meta.dims();
                let (h, w) = (dims[1], dims[2]);
                let (out_h, out_w) = spec.output_size(h, w)?;
                let cols_len = spec.in_channels * spec.kernel * spec.kernel * out_h * out_w;
                let cols_offset = planner.alloc(max_batch * cols_len);
                scratch = Some(cols_offset);
                let dst_offset = planner.alloc(max_batch * dst_len);
                let step = Step::Conv2d {
                    spec: *spec,
                    h,
                    w,
                    src,
                    src_len,
                    cols_offset,
                    cols_len,
                    dst_offset,
                    dst_len,
                    weight: node.weight.clone(),
                    bias: node.bias.clone(),
                    relu: *fused_relu,
                };
                (step, dst_offset)
            }
            OpKind::Conv1x1Gemm { spec, fused_relu } => {
                let dims = in_meta.dims();
                let (h, w) = (dims[1], dims[2]);
                let dst_offset = planner.alloc(max_batch * dst_len);
                let step = Step::Conv1x1 {
                    spec: *spec,
                    h,
                    w,
                    src,
                    src_len,
                    dst_offset,
                    dst_len,
                    weight: node.weight.clone(),
                    bias: node.bias.clone(),
                    relu: *fused_relu,
                };
                (step, dst_offset)
            }
            OpKind::Linear { in_features, out_features, fused_relu } => {
                let dst_offset = planner.alloc(max_batch * out_features);
                let step = Step::Linear {
                    in_features: *in_features,
                    out_features: *out_features,
                    src,
                    dst_offset,
                    weight: node.weight.clone(),
                    bias: node.bias.clone(),
                    relu: *fused_relu,
                };
                (step, dst_offset)
            }
            OpKind::Relu => {
                let dst_offset = planner.alloc(max_batch * dst_len);
                (Step::Relu { src, len: dst_len, dst_offset }, dst_offset)
            }
            OpKind::MaxPool2d { window } => {
                let dims = in_meta.dims();
                let (c, h, w) = (dims[0], dims[1], dims[2]);
                let dst_offset = planner.alloc(max_batch * dst_len);
                let step =
                    Step::MaxPool2d { window: *window, c, h, w, src, src_len, dst_offset, dst_len };
                (step, dst_offset)
            }
            OpKind::Flatten | OpKind::Identity => unreachable!("aliases handled above"),
        };
        steps.push(step);
        if let Some(offset) = scratch {
            planner.free(offset);
        }
        slot_refs.insert(dst_offset, n_consumers);
        produced.insert(node.id, (Src::Arena { offset: dst_offset }, node.output.clone()));
        if let Src::Arena { offset } = src {
            release(&mut slot_refs, &mut planner, offset);
        }
    }

    let (out_src, out_meta) = produced.get(&tail_id).expect("tail was scheduled").clone();
    let out_offset = match out_src {
        Src::Arena { offset } => offset,
        Src::Input => {
            return Err(GraphError::Unsupported(
                "the graph output aliases the graph input; nothing to execute".into(),
            ))
        }
    };

    Ok(ExecPlan {
        signature,
        input: input_meta,
        output: out_meta,
        max_batch,
        params,
        steps,
        arena: vec![0.0; planner.total()],
        out_offset,
        qweights: Vec::new(),
        qscales: Vec::new(),
        device: None,
    })
}

/// Drops one reference to the slot at `offset`, returning it to the planner
/// when no consumer remains.
fn release(slot_refs: &mut HashMap<usize, usize>, planner: &mut ArenaPlanner, offset: usize) {
    let refs = slot_refs.get_mut(&offset).expect("released slot is live");
    *refs -= 1;
    if *refs == 0 {
        slot_refs.remove(&offset);
        planner.free(offset);
    }
}

impl ExecPlan {
    /// Executes the plan on `batch` samples packed contiguously in `input`
    /// and returns the batched output (`batch * output_meta().len()`
    /// elements).
    ///
    /// Steady state allocates nothing: every intermediate lives in the arena
    /// planned at compile time, and kernels dispatch through the same
    /// `fuse-backend` / `fuse-parallel` machinery as the unfused pipeline.
    /// Float steps use the relaxed tensor entry points — identical to the
    /// exact dispatch under `scalar`/`simd`/`auto`, fused-multiply-add under
    /// an explicit `FUSE_BACKEND=simd-fma` — and quantized steps execute
    /// through the installed [`DeviceMemory`] (a [`HostDevice`] is installed
    /// on first run when none was supplied).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BatchOutOfRange`] when `batch` is zero or
    /// exceeds the compiled capacity, and [`GraphError::InputLenMismatch`]
    /// when `input` does not hold exactly `batch` samples.
    pub fn run(&mut self, input: &[f32], batch: usize) -> Result<&[f32]> {
        if batch == 0 || batch > self.max_batch {
            return Err(GraphError::BatchOutOfRange { batch, max_batch: self.max_batch });
        }
        let in_len = self.input.len();
        if input.len() != batch * in_len {
            return Err(GraphError::InputLenMismatch {
                expected: batch * in_len,
                actual: input.len(),
            });
        }
        self.ensure_device();

        let ExecPlan { steps, arena, params, device, .. } = self;
        let params: &[f32] = params;
        let device = device.as_ref();
        let mut qi = 0usize;
        for step in steps.iter() {
            match step {
                Step::Conv2d {
                    spec,
                    h,
                    w,
                    src,
                    src_len,
                    cols_offset,
                    cols_len,
                    dst_offset,
                    dst_len,
                    weight,
                    bias,
                    relu,
                } => {
                    let wgt = &params[weight.clone()];
                    let b = &params[bias.clone()];
                    let cols_r = *cols_offset..*cols_offset + batch * *cols_len;
                    let dst_r = *dst_offset..*dst_offset + batch * *dst_len;
                    match *src {
                        Src::Input => {
                            let [cols, dst, _] = split3_mut(arena, [cols_r, dst_r, 0..0]);
                            conv2d_forward_into_relaxed(
                                &input[..batch * *src_len],
                                batch,
                                *h,
                                *w,
                                wgt,
                                b,
                                spec,
                                cols,
                                dst,
                                *relu,
                            )?;
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *src_len;
                            let [src_s, cols, dst] = split3_mut(arena, [src_r, cols_r, dst_r]);
                            conv2d_forward_into_relaxed(
                                src_s, batch, *h, *w, wgt, b, spec, cols, dst, *relu,
                            )?;
                        }
                    }
                }
                Step::Conv1x1 {
                    spec,
                    h,
                    w,
                    src,
                    src_len,
                    dst_offset,
                    dst_len,
                    weight,
                    bias,
                    relu,
                } => {
                    let wgt = &params[weight.clone()];
                    let b = &params[bias.clone()];
                    let dst_r = *dst_offset..*dst_offset + batch * *dst_len;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            conv1x1_forward_into_relaxed(
                                &input[..batch * *src_len],
                                batch,
                                *h,
                                *w,
                                wgt,
                                b,
                                spec,
                                dst,
                                *relu,
                            )?;
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *src_len;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            conv1x1_forward_into_relaxed(
                                src_s, batch, *h, *w, wgt, b, spec, dst, *relu,
                            )?;
                        }
                    }
                }
                Step::Linear { in_features, out_features, src, dst_offset, weight, bias, relu } => {
                    let wgt = &params[weight.clone()];
                    let b = &params[bias.clone()];
                    let dst_r = *dst_offset..*dst_offset + batch * *out_features;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            linalg::affine_a_bt_relaxed(
                                &input[..batch * *in_features],
                                wgt,
                                b,
                                dst,
                                batch,
                                *in_features,
                                *out_features,
                                *relu,
                            );
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *in_features;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            linalg::affine_a_bt_relaxed(
                                src_s,
                                wgt,
                                b,
                                dst,
                                batch,
                                *in_features,
                                *out_features,
                                *relu,
                            );
                        }
                    }
                }
                Step::Relu { src, len, dst_offset } => {
                    let dst_r = *dst_offset..*dst_offset + batch * *len;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            for (d, s) in dst.iter_mut().zip(&input[..batch * *len]) {
                                *d = s.max(0.0);
                            }
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *len;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            for (d, s) in dst.iter_mut().zip(&*src_s) {
                                *d = s.max(0.0);
                            }
                        }
                    }
                }
                Step::MaxPool2d { window, c, h, w, src, src_len, dst_offset, dst_len } => {
                    let dst_r = *dst_offset..*dst_offset + batch * *dst_len;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            maxpool2d_forward_into(
                                &input[..batch * *src_len],
                                batch,
                                *c,
                                *h,
                                *w,
                                *window,
                                dst,
                                None,
                            )?;
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *src_len;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            maxpool2d_forward_into(src_s, batch, *c, *h, *w, *window, dst, None)?;
                        }
                    }
                }
                Step::QConv2d {
                    spec, h, w, src, src_len, dst_offset, dst_len, bias, relu, ..
                } => {
                    let dev = device.expect("quantized plan has a device installed");
                    let bufs = &dev.buffers[qi];
                    qi += 1;
                    let b = &params[bias.clone()];
                    let dst_r = *dst_offset..*dst_offset + batch * *dst_len;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            dev.mem.conv2d_i8(
                                &input[..batch * *src_len],
                                bufs.weight,
                                bufs.scale,
                                b,
                                dst,
                                batch,
                                spec,
                                *h,
                                *w,
                                *relu,
                            );
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *src_len;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            dev.mem.conv2d_i8(
                                src_s,
                                bufs.weight,
                                bufs.scale,
                                b,
                                dst,
                                batch,
                                spec,
                                *h,
                                *w,
                                *relu,
                            );
                        }
                    }
                }
                Step::QLinear {
                    in_features, out_features, src, dst_offset, bias, relu, ..
                } => {
                    let dev = device.expect("quantized plan has a device installed");
                    let bufs = &dev.buffers[qi];
                    qi += 1;
                    let b = &params[bias.clone()];
                    let dst_r = *dst_offset..*dst_offset + batch * *out_features;
                    match *src {
                        Src::Input => {
                            let dst = &mut arena[dst_r];
                            dev.mem.gemm_i8(
                                &input[..batch * *in_features],
                                bufs.weight,
                                bufs.scale,
                                b,
                                dst,
                                batch,
                                *in_features,
                                *out_features,
                                *relu,
                            );
                        }
                        Src::Arena { offset } => {
                            let src_r = offset..offset + batch * *in_features;
                            let [src_s, dst, _] = split3_mut(arena, [src_r, dst_r, 0..0]);
                            dev.mem.gemm_i8(
                                src_s,
                                bufs.weight,
                                bufs.scale,
                                b,
                                dst,
                                batch,
                                *in_features,
                                *out_features,
                                *relu,
                            );
                        }
                    }
                }
            }
        }

        let arena_ref: &[f32] = arena;
        Ok(&arena_ref[self.out_offset..self.out_offset + batch * self.output.len()])
    }

    /// The shape identity a checkpoint must match before replacing this
    /// plan's parameters (layer names in push order, total parameter count,
    /// input/output shapes).
    pub fn signature(&self) -> &ShapeSignature {
        &self.signature
    }

    /// Per-sample shape of the expected input.
    pub fn input_meta(&self) -> &TensorMeta {
        &self.input
    }

    /// Per-sample shape of the produced output.
    pub fn output_meta(&self) -> &TensorMeta {
        &self.output
    }

    /// Largest batch the plan can execute.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Number of kernel dispatches per run (after fusion).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total arena elements planned for intermediates (after slot reuse).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Number of parameters snapshotted into the plan.
    pub fn param_len(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter snapshot baked into the plan at compile (or
    /// artifact-load) time, in checkpoint order. On a quantized plan this
    /// holds only the f32 remainder (biases); the quantized weights live in
    /// a separate int8 table.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Whether any step executes int8 weights through the device seam.
    pub fn is_quantized(&self) -> bool {
        self.steps.iter().any(Step::is_quantized)
    }

    /// The parameter snapshot expanded to the signature's full f32 layout:
    /// float plans return [`ExecPlan::params`] verbatim; quantized plans
    /// reconstruct each step's dequantized weights followed by its f32 bias,
    /// in step order — the push order for chain-lowered plans, i.e. the
    /// checkpoint layout. This is how a quantized `.fplan` hot-swaps into an
    /// engine whose base model stores f32: the swapped-in weights carry the
    /// (bounded) quantization rounding.
    pub fn dequantized_params(&self) -> Vec<f32> {
        if !self.is_quantized() {
            return self.params.clone();
        }
        let mut out = Vec::with_capacity(self.signature.param_len());
        for step in &self.steps {
            match step {
                Step::QConv2d { spec, weight, scale, bias, .. } => {
                    let row_len = spec.in_channels * spec.kernel * spec.kernel;
                    let start = out.len();
                    out.resize(start + weight.len(), 0.0);
                    dequantize_rows(
                        &self.qweights[weight.clone()],
                        &self.qscales[scale.clone()],
                        row_len,
                        &mut out[start..],
                    );
                    out.extend_from_slice(&self.params[bias.clone()]);
                }
                Step::QLinear { in_features, weight, scale, bias, .. } => {
                    let start = out.len();
                    out.resize(start + weight.len(), 0.0);
                    dequantize_rows(
                        &self.qweights[weight.clone()],
                        &self.qscales[scale.clone()],
                        *in_features,
                        &mut out[start..],
                    );
                    out.extend_from_slice(&self.params[bias.clone()]);
                }
                Step::Conv2d { weight, bias, .. }
                | Step::Conv1x1 { weight, bias, .. }
                | Step::Linear { weight, bias, .. } => {
                    out.extend_from_slice(&self.params[weight.clone()]);
                    out.extend_from_slice(&self.params[bias.clone()]);
                }
                Step::Relu { .. } | Step::MaxPool2d { .. } => {}
            }
        }
        out
    }

    /// Number of int8 weights held by quantized steps (0 on float plans).
    pub fn qweight_len(&self) -> usize {
        self.qweights.len()
    }

    /// Derives a weight-quantized copy of this float plan: every conv and
    /// linear step is rewritten to its int8 counterpart with per-channel
    /// symmetric scales, biases stay f32, and the shape signature is kept
    /// **identical** so the derived plan passes the same checkpoint /
    /// hot-swap validation ladder as its float parent.
    ///
    /// The quantized plan runs under the relaxed contract: outputs are
    /// tolerance-verified against the float golden, not bit-reproducible
    /// (see `REPRODUCIBILITY.md`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Unsupported`] when the plan is already
    /// quantized and [`GraphError::Malformed`] when a weight is non-finite
    /// (quantizing NaN/∞ would silently poison the served model).
    pub fn quantize(&self) -> Result<ExecPlan> {
        if self.is_quantized() {
            return Err(GraphError::Unsupported("plan is already quantized".into()));
        }
        let mut params = Vec::new();
        let mut qweights: Vec<i8> = Vec::new();
        let mut qscales: Vec<f32> = Vec::new();
        let mut steps = Vec::with_capacity(self.steps.len());

        let push_quantized = |weight: &Range<usize>,
                              bias: &Range<usize>,
                              row_len: usize,
                              params: &mut Vec<f32>,
                              qweights: &mut Vec<i8>,
                              qscales: &mut Vec<f32>|
         -> Result<(Range<usize>, Range<usize>, Range<usize>)> {
            let w = &self.params[weight.clone()];
            if let Some(bad) = w.iter().find(|v| !v.is_finite()) {
                return Err(GraphError::Malformed(format!(
                    "cannot quantize non-finite weight {bad}"
                )));
            }
            let q = quantize_rows(w, row_len);
            let w_start = qweights.len();
            qweights.extend_from_slice(&q.values);
            let s_start = qscales.len();
            qscales.extend_from_slice(&q.scales);
            let b_start = params.len();
            params.extend_from_slice(&self.params[bias.clone()]);
            Ok((w_start..qweights.len(), s_start..qscales.len(), b_start..params.len()))
        };

        for step in &self.steps {
            let step = match step {
                Step::Conv2d {
                    spec,
                    h,
                    w,
                    src,
                    src_len,
                    dst_offset,
                    dst_len,
                    weight,
                    bias,
                    relu,
                    ..
                }
                | Step::Conv1x1 {
                    spec,
                    h,
                    w,
                    src,
                    src_len,
                    dst_offset,
                    dst_len,
                    weight,
                    bias,
                    relu,
                } => {
                    let row_len = spec.in_channels * spec.kernel * spec.kernel;
                    let (weight, scale, bias) = push_quantized(
                        weight,
                        bias,
                        row_len,
                        &mut params,
                        &mut qweights,
                        &mut qscales,
                    )?;
                    Step::QConv2d {
                        spec: *spec,
                        h: *h,
                        w: *w,
                        src: *src,
                        src_len: *src_len,
                        dst_offset: *dst_offset,
                        dst_len: *dst_len,
                        weight,
                        scale,
                        bias,
                        relu: *relu,
                    }
                }
                Step::Linear { in_features, out_features, src, dst_offset, weight, bias, relu } => {
                    let (weight, scale, bias) = push_quantized(
                        weight,
                        bias,
                        *in_features,
                        &mut params,
                        &mut qweights,
                        &mut qscales,
                    )?;
                    Step::QLinear {
                        in_features: *in_features,
                        out_features: *out_features,
                        src: *src,
                        dst_offset: *dst_offset,
                        weight,
                        scale,
                        bias,
                        relu: *relu,
                    }
                }
                other => other.clone(),
            };
            steps.push(step);
        }

        Ok(ExecPlan {
            signature: self.signature.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            max_batch: self.max_batch,
            params,
            steps,
            arena: vec![0.0; self.arena.len()],
            out_offset: self.out_offset,
            qweights,
            qscales,
            device: None,
        })
    }

    /// Installs `mem` as the plan's execution device, uploading every
    /// quantized step's weights and scales (batch-resident) in step order.
    /// Replaces any previously installed device; a no-op seam on float
    /// plans. This is the GPU slot-in point: `ServeEngine` and the cluster
    /// never see anything below this call.
    pub fn with_device(mut self, mem: Box<dyn DeviceMemory>) -> Self {
        self.install_device(mem);
        self
    }

    /// Short name of the installed device (`"host"`, …), or `None` while no
    /// device is bound (float plans never bind one).
    pub fn device_name(&self) -> Option<&'static str> {
        self.device.as_ref().map(|d| d.mem.name())
    }

    /// Lazily installs a [`HostDevice`] on quantized plans; handles are
    /// deterministic because uploads happen per quantized step in step
    /// order.
    fn ensure_device(&mut self) {
        if self.device.is_none() && self.is_quantized() {
            self.install_device(Box::new(HostDevice::new()));
        }
    }

    fn install_device(&mut self, mut mem: Box<dyn DeviceMemory>) {
        let mut buffers = Vec::new();
        for step in &self.steps {
            let (weight, scale) = match step {
                Step::QConv2d { weight, scale, .. } | Step::QLinear { weight, scale, .. } => {
                    (weight, scale)
                }
                _ => continue,
            };
            buffers.push(StepBuffers {
                weight: mem.upload_i8(&self.qweights[weight.clone()]),
                scale: mem.upload_f32(&self.qscales[scale.clone()]),
            });
        }
        self.device = Some(DeviceState { mem, buffers });
    }
}

impl fmt::Debug for ExecPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecPlan")
            .field("input", &self.input)
            .field("output", &self.output)
            .field("max_batch", &self.max_batch)
            .field("steps", &self.steps.len())
            .field("arena_len", &self.arena.len())
            .field("param_len", &self.params.len())
            .field("qweight_len", &self.qweights.len())
            .field("device", &self.device_name())
            .finish()
    }
}

/// Splits `data` into the three pairwise-disjoint regions, returned in the
/// order the ranges were passed. Empty ranges stand in for absent operands.
///
/// # Panics
///
/// Panics when the non-empty ranges overlap — a planner bug, never an input
/// error.
fn split3_mut(data: &mut [f32], ranges: [Range<usize>; 3]) -> [&mut [f32]; 3] {
    let mut order = [0usize, 1, 2];
    order.sort_by_key(|&i| ranges[i].start);
    let mut prev_end = 0usize;
    for &i in &order {
        if ranges[i].is_empty() {
            continue;
        }
        assert!(ranges[i].start >= prev_end, "planner produced overlapping buffers");
        prev_end = ranges[i].end;
    }
    let mut parts: [&mut [f32]; 3] = [&mut [], &mut [], &mut []];
    let mut rest = data;
    let mut consumed = 0usize;
    for &i in &order {
        let r = ranges[i].clone();
        if r.is_empty() {
            continue;
        }
        let tail = std::mem::take(&mut rest);
        let (_, tail) = tail.split_at_mut(r.start - consumed);
        let (part, tail) = tail.split_at_mut(r.end - r.start);
        parts[i] = part;
        rest = tail;
        consumed = r.end;
    }
    parts
}

#[cfg(test)]
mod tests {
    use fuse_tensor::{conv2d_forward, Tensor};

    use super::*;
    use crate::meta::TensorMeta;

    /// conv(+relu) → flatten → linear(+relu) → linear, the MARS shape in
    /// miniature, compared against the unfused kernel-by-kernel pipeline.
    fn build_case() -> (Graph, Tensor, Tensor, Tensor, Conv2dSpec, Tensor, Tensor, Tensor, Tensor) {
        let spec = Conv2dSpec::same(2, 3, 3);
        let cw = Tensor::randn(&[3, 2, 3, 3], 0.5, 41);
        let cb = Tensor::randn(&[3], 0.1, 42);
        let w1 = Tensor::randn(&[6, 48], 0.2, 43);
        let b1 = Tensor::randn(&[6], 0.1, 44);
        let w2 = Tensor::randn(&[4, 6], 0.3, 45);
        let b2 = Tensor::randn(&[4], 0.1, 46);
        let input = Tensor::randn(&[3, 2, 4, 4], 1.0, 47);

        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_conv2d("conv", spec, cw.as_slice(), cb.as_slice()).unwrap();
        g.push_relu("relu1").unwrap();
        g.push_flatten("flatten").unwrap();
        g.push_linear("fc1", 48, 6, w1.as_slice(), b1.as_slice()).unwrap();
        g.push_relu("relu2").unwrap();
        g.push_linear("fc2", 6, 4, w2.as_slice(), b2.as_slice()).unwrap();
        (g, input, cw, cb, spec, w1, b1, w2, b2)
    }

    #[allow(clippy::too_many_arguments)]
    fn legacy_forward(
        input: &Tensor,
        cw: &Tensor,
        cb: &Tensor,
        spec: &Conv2dSpec,
        w1: &Tensor,
        b1: &Tensor,
        w2: &Tensor,
        b2: &Tensor,
    ) -> Vec<f32> {
        let n = input.dims()[0];
        let conv = conv2d_forward(input, cw, cb, spec).unwrap();
        let act: Vec<f32> = conv.as_slice().iter().map(|x| x.max(0.0)).collect();
        let mut hidden = vec![0.0f32; n * 6];
        linalg::gemm_a_bt(&act, w1.as_slice(), &mut hidden, n, 48, 6);
        for row in hidden.chunks_exact_mut(6) {
            for (o, &b) in row.iter_mut().zip(b1.as_slice()) {
                *o += b;
            }
            for o in row.iter_mut() {
                *o = o.max(0.0);
            }
        }
        let mut out = vec![0.0f32; n * 4];
        linalg::gemm_a_bt(&hidden, w2.as_slice(), &mut out, n, 6, 4);
        for row in out.chunks_exact_mut(4) {
            for (o, &b) in row.iter_mut().zip(b2.as_slice()) {
                *o += b;
            }
        }
        out
    }

    #[test]
    fn compiled_plan_is_bit_identical_to_the_unfused_pipeline() {
        let (g, input, cw, cb, spec, w1, b1, w2, b2) = build_case();
        let mut plan = g.compile(8).unwrap();
        // Fusion folds both ReLUs away: conv+relu, flatten (alias), fc1+relu,
        // fc2 → three dispatches.
        assert_eq!(plan.step_count(), 3);
        let expected = legacy_forward(&input, &cw, &cb, &spec, &w1, &b1, &w2, &b2);
        let out = plan.run(input.as_slice(), 3).unwrap();
        assert_eq!(out, &expected[..], "fused plan must match the unfused pipeline bit for bit");
    }

    #[test]
    fn rerunning_a_plan_is_stateless() {
        let (g, input, ..) = build_case();
        let mut plan = g.compile(8).unwrap();
        let first = plan.run(input.as_slice(), 3).unwrap().to_vec();
        // A smaller batch in between dirties arena prefixes.
        let one = input.as_slice()[..32].to_vec();
        plan.run(&one, 1).unwrap();
        let second = plan.run(input.as_slice(), 3).unwrap();
        assert_eq!(second, &first[..], "stale arena contents must never leak into results");
    }

    #[test]
    fn arena_slots_are_reused_across_the_chain() {
        let (g, ..) = build_case();
        let plan = g.compile(4).unwrap();
        // Upper bound without liveness reuse: conv cols + conv out + fc1 out
        // + fc2 out as distinct slots. The fc outputs must fit in released
        // earlier slots, so the arena stays strictly below that sum.
        let no_reuse = 4 * (2 * 3 * 3 * 16 + 48 + 6 + 4);
        assert!(
            plan.arena_len() < no_reuse,
            "arena {} should reuse released slots (no-reuse bound {})",
            plan.arena_len(),
            no_reuse
        );
    }

    #[test]
    fn run_validates_batch_and_input_length() {
        let (g, input, ..) = build_case();
        let mut plan = g.compile(2).unwrap();
        assert!(matches!(
            plan.run(input.as_slice(), 3),
            Err(GraphError::BatchOutOfRange { batch: 3, max_batch: 2 })
        ));
        assert!(matches!(plan.run(&[], 0), Err(GraphError::BatchOutOfRange { .. })));
        assert!(matches!(
            plan.run(&input.as_slice()[..10], 1),
            Err(GraphError::InputLenMismatch { expected: 32, actual: 10 })
        ));
    }

    #[test]
    fn alias_only_graphs_are_rejected() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_flatten("flatten").unwrap();
        g.push_identity("dropout").unwrap();
        assert!(matches!(g.compile(1), Err(GraphError::Unsupported(_))));
        let empty = Graph::new(TensorMeta::f32(&[4]));
        assert!(matches!(empty.compile(1), Err(GraphError::Unsupported(_))));
    }

    #[test]
    fn standalone_relu_on_the_input_executes() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_relu("relu").unwrap();
        let mut plan = g.compile(2).unwrap();
        let out = plan.run(&[-1.0, 2.0, -3.0, 4.0], 1).unwrap();
        assert_eq!(out, &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn one_by_one_conv_collapses_and_matches_the_general_path() {
        let spec = Conv2dSpec { in_channels: 3, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let w = Tensor::randn(&[2, 3, 1, 1], 0.5, 51);
        let b = Tensor::randn(&[2], 0.1, 52);
        let input = Tensor::randn(&[2, 3, 4, 4], 1.0, 53);

        let mut g = Graph::new(TensorMeta::f32(&[3, 4, 4]));
        g.push_conv2d("pw", spec, w.as_slice(), b.as_slice()).unwrap();
        let mut plan = g.compile(2).unwrap();
        let expected = conv2d_forward(&input, &w, &b, &spec).unwrap();
        let out = plan.run(input.as_slice(), 2).unwrap();
        assert_eq!(out, expected.as_slice(), "direct-gemm collapse must not change any bit");
    }

    #[test]
    fn maxpool_step_matches_the_shared_kernel() {
        let input = Tensor::randn(&[2, 3, 4, 4], 1.0, 61);
        let mut g = Graph::new(TensorMeta::f32(&[3, 4, 4]));
        g.push_maxpool2d("pool", 2).unwrap();
        let mut plan = g.compile(2).unwrap();
        let mut expected = vec![0.0f32; 2 * 3 * 2 * 2];
        maxpool2d_forward_into(input.as_slice(), 2, 3, 4, 4, 2, &mut expected, None).unwrap();
        assert_eq!(plan.run(input.as_slice(), 2).unwrap(), &expected[..]);
    }

    #[test]
    fn relu_after_maxpool_stays_a_standalone_step() {
        // Pooling is order-sensitive and never a fusion producer; a trailing
        // ReLU must survive as its own dispatch.
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_maxpool2d("pool", 2).unwrap();
        g.push_relu("relu").unwrap();
        let mut plan = g.compile(1).unwrap();
        assert_eq!(plan.step_count(), 2);
        let input = Tensor::randn(&[1, 2, 4, 4], 1.0, 62);
        let mut pooled = vec![0.0f32; 2 * 2 * 2];
        maxpool2d_forward_into(input.as_slice(), 1, 2, 4, 4, 2, &mut pooled, None).unwrap();
        let expected: Vec<f32> = pooled.iter().map(|x| x.max(0.0)).collect();
        assert_eq!(plan.run(input.as_slice(), 1).unwrap(), &expected[..]);
    }

    #[test]
    fn quantized_plan_tracks_the_float_plan_within_budget() {
        let (g, input, ..) = build_case();
        let mut float_plan = g.compile(8).unwrap();
        let mut quant = float_plan.quantize().unwrap();
        assert!(quant.is_quantized());
        assert!(!float_plan.is_quantized());
        // Quantization conserves the hot-swap identity: same signature, same
        // dispatch count, and every f32 weight became exactly one i8.
        assert_eq!(quant.signature(), float_plan.signature());
        assert_eq!(quant.step_count(), float_plan.step_count());
        assert_eq!(quant.param_len() + quant.qweight_len(), float_plan.signature().param_len());

        let expected = float_plan.run(input.as_slice(), 3).unwrap().to_vec();
        let actual = quant.run(input.as_slice(), 3).unwrap().to_vec();
        assert_eq!(quant.device_name(), Some("host"), "first run installs the host device");
        let tol = fuse_quant::Tolerance { max_ulp: 0, max_abs: 0.05, max_rel: 0.02 };
        fuse_quant::compare::compare(&expected, &actual, &tol)
            .expect("quantized serve must stay within the declared budget");
        for (e_row, a_row) in expected.chunks_exact(4).zip(actual.chunks_exact(4)) {
            assert_eq!(fuse_quant::top1(e_row), fuse_quant::top1(a_row), "top-1 must agree");
        }
    }

    #[test]
    fn quantizing_twice_is_rejected() {
        let (g, ..) = build_case();
        let quant = g.compile(2).unwrap().quantize().unwrap();
        assert!(matches!(quant.quantize(), Err(GraphError::Unsupported(_))));
    }

    #[test]
    fn float_plans_never_bind_a_device() {
        let (g, input, ..) = build_case();
        let mut plan = g.compile(4).unwrap();
        plan.run(input.as_slice(), 3).unwrap();
        assert_eq!(plan.device_name(), None);
    }

    #[test]
    fn with_device_matches_the_lazily_installed_host_device() {
        let (g, input, ..) = build_case();
        let float_plan = g.compile(4).unwrap();
        let mut auto = float_plan.quantize().unwrap();
        let mut explicit = float_plan.quantize().unwrap().with_device(Box::new(HostDevice::new()));
        assert_eq!(explicit.device_name(), Some("host"));
        let two = &input.as_slice()[..2 * 32];
        let a = auto.run(two, 2).unwrap().to_vec();
        let b = explicit.run(two, 2).unwrap();
        assert_eq!(b, &a[..], "upload order is deterministic, outputs identical");
    }

    #[test]
    fn signature_survives_compilation() {
        let (g, ..) = build_case();
        let sig = g.signature();
        let plan = g.compile(2).unwrap();
        assert_eq!(plan.signature(), &sig);
        assert_eq!(plan.signature().layer_names().len(), 6, "pre-fusion names are kept");
    }
}
