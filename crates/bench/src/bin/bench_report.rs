//! Folds the JSONL emitted by the criterion stand-in (`CRITERION_JSON`) into
//! the `BENCH_pr.json` telemetry artifact, prints a summary table, and
//! optionally gates on a committed baseline.
//!
//! Usage:
//!
//! ```text
//! bench_report <input.jsonl> <output.json> \
//!     [--compare <baseline.json>] [--max-regress-pct <percent>]
//! ```
//!
//! The output is a flat JSON object mapping benchmark name to median
//! nanoseconds per iteration (see `crates/bench/README.md` for the schema).
//! When a benchmark appears multiple times in the input (e.g. re-runs), the
//! last record wins.
//!
//! With `--compare`, a per-benchmark delta table against the baseline is
//! printed (markdown, so CI can pipe it straight into
//! `$GITHUB_STEP_SUMMARY`), and — when `--max-regress-pct` is given — the
//! process exits nonzero if any benchmark present in both files regressed
//! by more than the threshold. Benchmarks only in the current run are
//! reported as `new`; benchmarks only in the baseline as `removed`; neither
//! gates.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts the value of a `"key":` field from one JSONL record produced by
/// the criterion stand-in. Returns the raw token (string contents for
/// strings, numeric text for numbers).
fn extract_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(s) = rest.strip_prefix('"') {
        // String value: the stand-in only escapes quotes and backslashes, and
        // benchmark names in this workspace contain neither.
        s.find('"').map(|end| &s[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse_records(input: &str) -> BTreeMap<String, f64> {
    let mut medians = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(name), Some(median)) =
            (extract_field(line, "name"), extract_field(line, "median_ns"))
        else {
            eprintln!("bench_report: skipping malformed line: {line}");
            continue;
        };
        match median.parse::<f64>() {
            Ok(ns) => {
                medians.insert(name.to_string(), ns);
            }
            Err(_) => eprintln!("bench_report: non-numeric median in line: {line}"),
        }
    }
    medians
}

/// Parses a `BENCH_*.json` artifact (the flat `"name": median_ns` object
/// `render_json` emits — one entry per line).
fn parse_baseline(input: &str) -> BTreeMap<String, f64> {
    let mut medians = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((name, value)) = rest.split_once("\":") else { continue };
        if let Ok(ns) = value.trim().parse::<f64>() {
            medians.insert(name.to_string(), ns);
        }
    }
    medians
}

fn render_json(medians: &BTreeMap<String, f64>) -> String {
    let entries: Vec<String> =
        medians.iter().map(|(name, ns)| format!("  \"{name}\": {ns:.3}")).collect();
    format!("{{\n{}\n}}\n", entries.join(",\n"))
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn render_table(medians: &BTreeMap<String, f64>) -> String {
    let name_width = medians.keys().map(|n| n.len()).max().unwrap_or(0).max("benchmark".len()) + 2;
    let mut table = format!("{:<name_width$} {:>14} {:>16}\n", "benchmark", "median", "median_ns");
    table.push_str(&format!("{:-<width$}\n", "", width = name_width + 32));
    for (name, &ns) in medians {
        table.push_str(&format!("{name:<name_width$} {:>14} {ns:>16.1}\n", human_time(ns)));
    }
    table
}

/// One row of the comparison table.
struct Delta {
    name: String,
    status: &'static str,
    detail: String,
    /// Regression percentage for benchmarks present in both files.
    regress_pct: Option<f64>,
}

fn compare(current: &BTreeMap<String, f64>, baseline: &BTreeMap<String, f64>) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for (name, &ns) in current {
        match baseline.get(name) {
            Some(&base_ns) if base_ns > 0.0 => {
                let pct = (ns - base_ns) / base_ns * 100.0;
                deltas.push(Delta {
                    name: name.clone(),
                    status: if pct > 0.0 {
                        "slower"
                    } else if pct < 0.0 {
                        "faster"
                    } else {
                        "same"
                    },
                    detail: format!("{} -> {} ({:+.1}%)", human_time(base_ns), human_time(ns), pct),
                    regress_pct: Some(pct),
                });
            }
            _ => deltas.push(Delta {
                name: name.clone(),
                status: "new",
                detail: format!("{} (no baseline)", human_time(ns)),
                regress_pct: None,
            }),
        }
    }
    for (name, &base_ns) in baseline {
        if !current.contains_key(name) {
            deltas.push(Delta {
                name: name.clone(),
                status: "removed",
                detail: format!("was {}", human_time(base_ns)),
                regress_pct: None,
            });
        }
    }
    deltas
}

/// Renders the delta table as markdown (readable both on a terminal and in
/// `$GITHUB_STEP_SUMMARY`), flagging rows past the threshold.
fn render_deltas(deltas: &[Delta], max_regress_pct: Option<f64>) -> String {
    let mut out = String::from("| benchmark | status | baseline -> current |\n|---|---|---|\n");
    for d in deltas {
        let flag = match (d.regress_pct, max_regress_pct) {
            (Some(pct), Some(max)) if pct > max => " **REGRESSION**",
            _ => "",
        };
        out.push_str(&format!("| {} | {}{} | {} |\n", d.name, d.status, flag, d.detail));
    }
    out
}

struct Args {
    input_path: String,
    output_path: String,
    baseline_path: Option<String>,
    max_regress_pct: Option<f64>,
}

fn parse_args(args: &[String]) -> Option<Args> {
    let mut positional = Vec::new();
    let mut baseline_path = None;
    let mut max_regress_pct = None;
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--compare" => baseline_path = Some(iter.next()?.clone()),
            "--max-regress-pct" => max_regress_pct = Some(iter.next()?.parse::<f64>().ok()?),
            _ => positional.push(arg.clone()),
        }
    }
    let [input_path, output_path] = positional.try_into().ok()?;
    Some(Args { input_path, output_path, baseline_path, max_regress_pct })
}

fn main() -> ExitCode {
    let raw_args: Vec<String> = std::env::args().collect();
    let Some(args) = parse_args(&raw_args) else {
        eprintln!(
            "usage: bench_report <input.jsonl> <output.json> \
             [--compare <baseline.json>] [--max-regress-pct <percent>]"
        );
        return ExitCode::FAILURE;
    };
    let input = match std::fs::read_to_string(&args.input_path) {
        Ok(input) => input,
        Err(err) => {
            eprintln!("bench_report: cannot read {}: {err}", args.input_path);
            return ExitCode::FAILURE;
        }
    };
    let medians = parse_records(&input);
    if medians.is_empty() {
        eprintln!("bench_report: no benchmark records found in {}", args.input_path);
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(&args.output_path, render_json(&medians)) {
        eprintln!("bench_report: cannot write {}: {err}", args.output_path);
        return ExitCode::FAILURE;
    }
    print!("{}", render_table(&medians));
    println!("\n{} benchmarks -> {}", medians.len(), args.output_path);

    let Some(baseline_path) = &args.baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(raw) => parse_baseline(&raw),
        Err(err) => {
            eprintln!("bench_report: cannot read baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.is_empty() {
        eprintln!("bench_report: no baseline records found in {baseline_path}");
        return ExitCode::FAILURE;
    }
    let deltas = compare(&medians, &baseline);
    println!("\n## Benchmark deltas vs {baseline_path}\n");
    print!("{}", render_deltas(&deltas, args.max_regress_pct));
    if let Some(max) = args.max_regress_pct {
        let regressions: Vec<&Delta> =
            deltas.iter().filter(|d| d.regress_pct.is_some_and(|p| p > max)).collect();
        if !regressions.is_empty() {
            eprintln!(
                "bench_report: {} benchmark(s) regressed more than {max}% vs {baseline_path}:",
                regressions.len()
            );
            for d in &regressions {
                eprintln!("  {}: {}", d.name, d.detail);
            }
            return ExitCode::FAILURE;
        }
        println!("\nNo benchmark regressed more than {max}%.");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"name\":\"gemm/64\",\"median_ns\":1234.567,\"iterations\":100,\"samples\":7}\n",
        "{\"name\":\"conv2d_5to16_8x8_batch32\",\"median_ns\":98765.4,\"iterations\":50,\"samples\":7}\n",
        "{\"name\":\"gemm/64\",\"median_ns\":1200.0,\"iterations\":100,\"samples\":7}\n",
        "not json at all\n",
    );

    #[test]
    fn parses_records_last_wins_and_skips_garbage() {
        let medians = parse_records(SAMPLE);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["gemm/64"], 1200.0);
        assert_eq!(medians["conv2d_5to16_8x8_batch32"], 98765.4);
    }

    #[test]
    fn renders_valid_flat_json() {
        let medians = parse_records(SAMPLE);
        let json = render_json(&medians);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"gemm/64\": 1200.000"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn table_lists_every_benchmark() {
        let medians = parse_records(SAMPLE);
        let table = render_table(&medians);
        assert!(table.contains("gemm/64"));
        assert!(table.contains("µs"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn extract_field_handles_numbers_and_strings() {
        let line = "{\"name\":\"x\",\"median_ns\":5.5,\"iterations\":9,\"samples\":3}";
        assert_eq!(extract_field(line, "name"), Some("x"));
        assert_eq!(extract_field(line, "median_ns"), Some("5.5"));
        assert_eq!(extract_field(line, "samples"), Some("3"));
        assert_eq!(extract_field(line, "missing"), None);
    }

    #[test]
    fn baseline_roundtrips_through_render_json() {
        let medians = parse_records(SAMPLE);
        let parsed = parse_baseline(&render_json(&medians));
        assert_eq!(parsed.len(), medians.len());
        assert_eq!(parsed["gemm/64"], 1200.0);
    }

    #[test]
    fn compare_classifies_and_flags_regressions() {
        let mut current = BTreeMap::new();
        current.insert("a".to_string(), 130.0);
        current.insert("b".to_string(), 90.0);
        current.insert("c".to_string(), 10.0);
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), 100.0);
        baseline.insert("b".to_string(), 100.0);
        baseline.insert("gone".to_string(), 5.0);
        let deltas = compare(&current, &baseline);
        let by_name = |n: &str| deltas.iter().find(|d| d.name == n).expect("delta row present");
        assert_eq!(by_name("a").status, "slower");
        assert!((by_name("a").regress_pct.unwrap() - 30.0).abs() < 1e-9);
        assert_eq!(by_name("b").status, "faster");
        assert_eq!(by_name("c").status, "new");
        assert_eq!(by_name("gone").status, "removed");
        // Only `a` exceeds a 25% gate; new/removed rows never gate.
        let gated: Vec<&Delta> =
            deltas.iter().filter(|d| d.regress_pct.is_some_and(|p| p > 25.0)).collect();
        assert_eq!(gated.len(), 1);
        assert_eq!(gated[0].name, "a");
        let table = render_deltas(&deltas, Some(25.0));
        assert!(table.contains("**REGRESSION**"));
        assert!(table.lines().count() == 2 + deltas.len());
    }

    #[test]
    fn parse_args_handles_flags_in_any_position() {
        let args: Vec<String> = [
            "bench_report",
            "in.jsonl",
            "--compare",
            "base.json",
            "out.json",
            "--max-regress-pct",
            "25",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_args(&args).expect("valid args");
        assert_eq!(parsed.input_path, "in.jsonl");
        assert_eq!(parsed.output_path, "out.json");
        assert_eq!(parsed.baseline_path.as_deref(), Some("base.json"));
        assert_eq!(parsed.max_regress_pct, Some(25.0));
        assert!(parse_args(&args[..2]).is_none(), "missing output path");
    }
}
