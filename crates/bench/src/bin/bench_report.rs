//! Folds the JSONL emitted by the criterion stand-in (`CRITERION_JSON`) into
//! the `BENCH_pr.json` telemetry artifact and prints a summary table.
//!
//! Usage: `bench_report <input.jsonl> <output.json>`
//!
//! The output is a flat JSON object mapping benchmark name to median
//! nanoseconds per iteration (see `crates/bench/README.md` for the schema).
//! When a benchmark appears multiple times in the input (e.g. re-runs), the
//! last record wins.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts the value of a `"key":` field from one JSONL record produced by
/// the criterion stand-in. Returns the raw token (string contents for
/// strings, numeric text for numbers).
fn extract_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(s) = rest.strip_prefix('"') {
        // String value: the stand-in only escapes quotes and backslashes, and
        // benchmark names in this workspace contain neither.
        s.find('"').map(|end| &s[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse_records(input: &str) -> BTreeMap<String, f64> {
    let mut medians = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(name), Some(median)) =
            (extract_field(line, "name"), extract_field(line, "median_ns"))
        else {
            eprintln!("bench_report: skipping malformed line: {line}");
            continue;
        };
        match median.parse::<f64>() {
            Ok(ns) => {
                medians.insert(name.to_string(), ns);
            }
            Err(_) => eprintln!("bench_report: non-numeric median in line: {line}"),
        }
    }
    medians
}

fn render_json(medians: &BTreeMap<String, f64>) -> String {
    let entries: Vec<String> =
        medians.iter().map(|(name, ns)| format!("  \"{name}\": {ns:.3}")).collect();
    format!("{{\n{}\n}}\n", entries.join(",\n"))
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn render_table(medians: &BTreeMap<String, f64>) -> String {
    let name_width = medians.keys().map(|n| n.len()).max().unwrap_or(0).max("benchmark".len()) + 2;
    let mut table = format!("{:<name_width$} {:>14} {:>16}\n", "benchmark", "median", "median_ns");
    table.push_str(&format!("{:-<width$}\n", "", width = name_width + 32));
    for (name, &ns) in medians {
        table.push_str(&format!("{name:<name_width$} {:>14} {ns:>16.1}\n", human_time(ns)));
    }
    table
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, input_path, output_path] = args.as_slice() else {
        eprintln!("usage: bench_report <input.jsonl> <output.json>");
        return ExitCode::FAILURE;
    };
    let input = match std::fs::read_to_string(input_path) {
        Ok(input) => input,
        Err(err) => {
            eprintln!("bench_report: cannot read {input_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let medians = parse_records(&input);
    if medians.is_empty() {
        eprintln!("bench_report: no benchmark records found in {input_path}");
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(output_path, render_json(&medians)) {
        eprintln!("bench_report: cannot write {output_path}: {err}");
        return ExitCode::FAILURE;
    }
    print!("{}", render_table(&medians));
    println!("\n{} benchmarks -> {output_path}", medians.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"name\":\"gemm/64\",\"median_ns\":1234.567,\"iterations\":100,\"samples\":7}\n",
        "{\"name\":\"conv2d_5to16_8x8_batch32\",\"median_ns\":98765.4,\"iterations\":50,\"samples\":7}\n",
        "{\"name\":\"gemm/64\",\"median_ns\":1200.0,\"iterations\":100,\"samples\":7}\n",
        "not json at all\n",
    );

    #[test]
    fn parses_records_last_wins_and_skips_garbage() {
        let medians = parse_records(SAMPLE);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["gemm/64"], 1200.0);
        assert_eq!(medians["conv2d_5to16_8x8_batch32"], 98765.4);
    }

    #[test]
    fn renders_valid_flat_json() {
        let medians = parse_records(SAMPLE);
        let json = render_json(&medians);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"gemm/64\": 1200.000"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn table_lists_every_benchmark() {
        let medians = parse_records(SAMPLE);
        let table = render_table(&medians);
        assert!(table.contains("gemm/64"));
        assert!(table.contains("µs"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn extract_field_handles_numbers_and_strings() {
        let line = "{\"name\":\"x\",\"median_ns\":5.5,\"iterations\":9,\"samples\":3}";
        assert_eq!(extract_field(line, "name"), Some("x"));
        assert_eq!(extract_field(line, "median_ns"), Some("5.5"));
        assert_eq!(extract_field(line, "samples"), Some("3"));
        assert_eq!(extract_field(line, "missing"), None);
    }
}
