//! # fuse-bench
//!
//! Benchmark and experiment harness that regenerates every table and figure
//! of the FUSE paper's evaluation section (see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results).
//!
//! The benches come in two flavours:
//!
//! * **Experiment harnesses** (`table1_frame_fusion`, `figure2_density`,
//!   `figure3_adapt_all_layers`, `figure4_adapt_last_layer`,
//!   `table2_adaptation_summary`, `ablation_meta_variants`) run the
//!   corresponding experiment once at the selected
//!   [`fuse_core::experiments::profile::ExperimentProfile`] scale, print the
//!   same rows/series the paper reports and write CSVs under
//!   `target/experiment-results/`.
//! * **Timing benches** (`latency_pipeline`, `micro_kernels`) use Criterion to
//!   measure the deployed pipeline latency (the paper's "fast"/edge claim)
//!   and the throughput of the core numerical kernels.
//!
//! Run everything with `cargo bench --workspace`; set
//! `FUSE_FULL_EXPERIMENT=1` for paper-scale runs.

use std::time::Instant;

/// Prints a standard banner for an experiment harness, including the active
/// profile, and returns a timer started at the call.
pub fn start_experiment(name: &str, profile_name: &str) -> Instant {
    println!();
    println!("================================================================");
    println!("FUSE experiment harness: {name}");
    println!("profile: {profile_name} (set FUSE_FULL_EXPERIMENT=1 for paper scale)");
    println!("================================================================");
    Instant::now()
}

/// Prints the elapsed wall-clock time of an experiment harness.
pub fn finish_experiment(name: &str, started: Instant) {
    println!("[{name}] completed in {:.1} s", started.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_helpers_do_not_panic() {
        let t = start_experiment("unit-test", "bench");
        finish_experiment("unit-test", t);
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}
