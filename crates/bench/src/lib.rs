//! # fuse-bench
//!
//! Benchmark and experiment harness that regenerates every table and figure
//! of the FUSE paper's evaluation section (see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results).
//!
//! The benches come in two flavours:
//!
//! * **Experiment harnesses** (`table1_frame_fusion`, `figure2_density`,
//!   `figure3_adapt_all_layers`, `figure4_adapt_last_layer`,
//!   `table2_adaptation_summary`, `ablation_meta_variants`) run the
//!   corresponding experiment once at the selected
//!   [`fuse_core::experiments::profile::ExperimentProfile`] scale, print the
//!   same rows/series the paper reports and write CSVs under
//!   `target/experiment-results/`.
//! * **Timing benches** (`latency_pipeline`, `micro_kernels`) use Criterion to
//!   measure the deployed pipeline latency (the paper's "fast"/edge claim)
//!   and the throughput of the core numerical kernels.
//!
//! Run everything with `cargo bench --workspace`; set
//! `FUSE_FULL_EXPERIMENT=1` for paper-scale runs.

use std::time::Instant;

use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

/// Movements cycled across the simulated subjects of the serving benches.
pub const SERVING_MOVEMENTS: [Movement; 4] = [
    Movement::Squat,
    Movement::LeftUpperLimbExtension,
    Movement::BothUpperLimbExtension,
    Movement::RightLimbExtension,
];

/// Pre-generates `frames` point-cloud frames for each of `subjects` clients
/// (distinct profiles, movements and seeds per subject), so serving bench
/// loops measure the engine/router, not scene synthesis.
pub fn subject_streams(subjects: usize, frames: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..subjects)
        .map(|s| {
            let animator = MovementAnimator::new(
                Subject::profile(s % 4),
                SERVING_MOVEMENTS[s % SERVING_MOVEMENTS.len()],
                10.0,
            )
            .with_seed(s as u64);
            let samples = animator.sample_frames_with_velocities(0.0, frames);
            samples
                .iter()
                .enumerate()
                .map(|(i, (skeleton, velocities))| {
                    let scene: Scene = body_surface_points(skeleton, velocities, 4)
                        .iter()
                        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                        .collect();
                    scatter.sample(&scene, (s * frames + i) as u64)
                })
                .collect()
        })
        .collect()
}

/// Prints a standard banner for an experiment harness, including the active
/// profile, and returns a timer started at the call.
pub fn start_experiment(name: &str, profile_name: &str) -> Instant {
    println!();
    println!("================================================================");
    println!("FUSE experiment harness: {name}");
    println!("profile: {profile_name} (set FUSE_FULL_EXPERIMENT=1 for paper scale)");
    println!("================================================================");
    Instant::now()
}

/// Prints the elapsed wall-clock time of an experiment harness.
pub fn finish_experiment(name: &str, started: Instant) {
    println!("[{name}] completed in {:.1} s", started.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_helpers_do_not_panic() {
        let t = start_experiment("unit-test", "bench");
        finish_experiment("unit-test", t);
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}
