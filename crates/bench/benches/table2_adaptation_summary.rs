//! Table 2 harness: MAE comparison between the baseline and FUSE at
//! 5 epochs, the intersection epoch, and the final epoch, for both
//! fine-tuning scopes. This harness prepares the adaptation context once and
//! runs both scopes, so it also regenerates the Figure 3 and Figure 4 series
//! in a single pass.

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::profile::ExperimentProfile;
use fuse_core::experiments::{figure3, figure4, table2};

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Table 2 — adaptation summary (both scopes)", &profile.name);

    match table2::run(&profile) {
        Ok((table, all_layers, last_layer)) => {
            println!("{}", figure3::render(&all_layers));
            println!("{}", figure4::render(&last_layer));
            println!("{}", table.render_table());
            match table.write_csv() {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
            all_layers.write_csv("figure3").ok();
            last_layer.write_csv("figure4").ok();
        }
        Err(e) => eprintln!("table 2 experiment failed: {e}"),
    }
    finish_experiment("table2_adaptation_summary", timer);
}
