//! Cluster serving throughput: N concurrent sessions streaming frames
//! through a sharded `fuse-cluster` router.
//!
//! The scaling question behind the FUSE north star — many clients, many
//! cores — measured at the router layer: one round submits a frame per
//! session (async, channel transport) and drains the barrier, so the number
//! includes routing, channel hops, per-shard micro-batching, inference and
//! re-sequencing. The fan-out hot-swap timing covers the two-phase
//! validate-everywhere-commit-everywhere path that keeps shards atomic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_bench::subject_streams;
use fuse_cluster::{ClusterConfig, ClusterRouter};
use fuse_core::prelude::*;
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};

fn router_with_sessions(shards: usize, subjects: usize) -> ClusterRouter {
    let model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    let config = ClusterConfig { shards, ..ClusterConfig::default() };
    let mut router = ClusterRouter::new(model, config).expect("router builds");
    for s in 0..subjects {
        router.open_session(SessionConfig::new(s as u64)).expect("session opens");
    }
    router
}

fn bench_cluster_step(c: &mut Criterion) {
    for subjects in [1usize, 4, 16] {
        let streams = subject_streams(subjects, 8);
        for shards in [1usize, 2, 4] {
            let mut router = router_with_sessions(shards, subjects);
            let mut round = 0usize;
            c.bench_function(&format!("cluster_step_{subjects}_sessions_{shards}_shards"), |b| {
                b.iter(|| {
                    let frame_idx = round % streams[0].len();
                    round += 1;
                    for (s, stream) in streams.iter().enumerate() {
                        router
                            .submit(s as u64, stream[frame_idx].clone())
                            .expect("submit succeeds");
                    }
                    black_box(router.drain().expect("drain succeeds"))
                })
            });
            router.shutdown();
        }
    }
}

fn bench_fan_out_hot_swap(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("fuse_cluster_bench_hot_swap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ckpt.json");
    let donor = ServeEngine::new(
        build_mars_cnn(&ModelConfig::default(), 11).expect("model builds"),
        ServeConfig::default(),
    )
    .expect("engine builds");
    donor.save_checkpoint("bench", &path).expect("checkpoint saves");
    for shards in [1usize, 4] {
        let mut router = router_with_sessions(shards, 1);
        c.bench_function(&format!("cluster_hot_swap_fanout_{shards}_shards"), |b| {
            b.iter(|| black_box(router.hot_swap(black_box(&path)).expect("hot swap succeeds")))
        });
        router.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_cluster_step, bench_fan_out_hot_swap);
criterion_main!(benches);
