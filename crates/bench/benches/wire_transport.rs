//! Wire-protocol cost: what multi-host serving pays per frame on the wire.
//!
//! Four layers, measured separately so a regression names its culprit:
//! `FNET` framing (encode + validate + checksum), the typed message codec
//! on a realistic radar frame, one stop-and-wait RPC round over the
//! in-memory link, and the full remote-shard serve round (submit + flush
//! through a `HostShard` behind a sim transport). The migration benchmark
//! prices moving a live session — fusion history and model bytes — across
//! the wire, the operation the cluster uses to rebalance hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::thread;
use std::time::Duration;

use fuse_bench::subject_streams;
use fuse_cluster::{ClusterConfig, ClusterRouter, HostShard, SessionConfig, ShardSpec};
use fuse_core::prelude::*;
use fuse_net::{
    decode_frame, encode_frame, sim_pair, FaultConfig, RpcClient, RpcServer, Transport, WireRequest,
};

fn bench_frame_codec(c: &mut Criterion) {
    for (label, len) in [("64b", 64usize), ("64kib", 64 * 1024)] {
        let payload = vec![0xa5u8; len];
        c.bench_function(&format!("wire_frame_roundtrip_{label}"), |b| {
            b.iter(|| {
                let frame = encode_frame(black_box(&payload));
                black_box(decode_frame(&frame).expect("frame decodes").len())
            })
        });
    }
}

fn bench_message_codec(c: &mut Criterion) {
    let frame = subject_streams(1, 1).remove(0).remove(0);
    let request = WireRequest::Submit { id: 7, frame };
    c.bench_function("wire_message_submit_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&request).encode();
            black_box(WireRequest::decode(&bytes).expect("message decodes"))
        })
    });
}

fn bench_rpc_round(c: &mut Criterion) {
    let (client_end, server_end) = sim_pair(FaultConfig::default(), FaultConfig::default());
    let echo = thread::spawn(move || {
        let mut server = RpcServer::new(server_end);
        loop {
            match server.next_request(Duration::from_millis(50)) {
                Ok(Some(body)) => server.respond(&body).expect("respond succeeds"),
                Ok(None) => continue,
                Err(_) => return,
            }
        }
    });
    let mut client = RpcClient::new(client_end);
    let body = vec![0x5au8; 256];
    c.bench_function("wire_rpc_round_clean_link", |b| {
        b.iter(|| black_box(client.call(black_box(&body)).expect("call succeeds")))
    });
    drop(client);
    echo.join().expect("echo server joins");
}

fn remote_router(model_seed: u64) -> (ClusterRouter, thread::JoinHandle<()>) {
    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let (router_end, host_end) = sim_pair(FaultConfig::default(), FaultConfig::default());
    let host_config = config.clone();
    let host = thread::spawn(move || {
        let model = build_mars_cnn(&ModelConfig::tiny(), model_seed).expect("model builds");
        HostShard::new(model, host_config)
            .expect("host shard builds")
            .serve(host_end)
            .expect("host exits cleanly");
    });
    let model = build_mars_cnn(&ModelConfig::tiny(), model_seed).expect("model builds");
    let router = ClusterRouter::with_shards(
        model,
        config,
        vec![ShardSpec::Remote(Box::new(router_end) as Box<dyn Transport>), ShardSpec::Local],
    )
    .expect("router builds");
    (router, host)
}

fn bench_remote_serve_round(c: &mut Criterion) {
    let (mut router, host) = remote_router(21);
    router.open_session(SessionConfig::new(0)).expect("session opens");
    let stream = subject_streams(1, 8).remove(0);
    let mut round = 0usize;
    c.bench_function("wire_remote_shard_serve_round", |b| {
        b.iter(|| {
            let frame = stream[round % stream.len()].clone();
            round += 1;
            router.submit(0, frame).expect("submit succeeds");
            black_box(router.drain().expect("drain succeeds"))
        })
    });
    router.shutdown();
    host.join().expect("host joins");
}

fn bench_session_migration(c: &mut Criterion) {
    let (mut router, host) = remote_router(21);
    router.open_session(SessionConfig::new(0)).expect("session opens");
    // Seed the session with fusion history so the migration moves real state.
    let stream = subject_streams(1, 4).remove(0);
    for frame in &stream {
        router.submit(0, frame.clone()).expect("submit succeeds");
        router.drain().expect("drain succeeds");
    }
    c.bench_function("wire_session_migration_roundtrip", |b| {
        b.iter(|| {
            // Local -> remote and back: two state transfers over the wire.
            router.migrate_session(0, 1).expect("migrate out succeeds");
            router.migrate_session(0, 0).expect("migrate back succeeds");
        })
    });
    router.shutdown();
    host.join().expect("host joins");
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_message_codec,
    bench_rpc_round,
    bench_remote_serve_round,
    bench_session_migration
);
criterion_main!(benches);
