//! Benchmarks of the int8 weight-quantized relaxed tier against the exact
//! f32 SIMD kernels it shadows.
//!
//! The acceptance bar for the quantized fast tier is a **>= 1.5x** speedup
//! of the int8 GEMM over the exact f32 SIMD kernel on the dominant MARS CNN
//! workload (the 2048 -> 512 fully-connected layer at batch 64 — the same
//! `fc_2048x512_batch64` geometry `micro_kernels.rs` pins). The
//! `quant_serve_step` group measures the end effect: one full plan forward
//! of the MARS CNN, float plan vs int8-quantized plan.
//!
//! Results feed the CI telemetry artifact (non-gating); outputs of the int8
//! kernels are verified elsewhere by the tolerance harness, never here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_backend::{with_backend, BackendChoice};
use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_nn::LoweringRequest;
use fuse_quant::{quantize_rows, DeviceMemory, HostDevice};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};
use fuse_tensor::linalg;

fn bench_int8_gemm(c: &mut Criterion) {
    // The acceptance workload: 2048 -> 512 fully connected at batch 64.
    let (batch, k, n) = (64usize, 2048usize, 512usize);
    let input: Vec<f32> = (0..batch * k).map(|i| (i % 7) as f32 * 0.01).collect();
    let weight: Vec<f32> = (0..n * k).map(|i| (i % 11) as f32 * 0.001).collect();
    let bias = vec![0.0f32; n];
    let mut out = vec![0.0f32; batch * n];

    let mut group = c.benchmark_group("int8_gemm/fc_2048x512_batch64");
    group.bench_function("f32_simd", |bench| {
        with_backend(BackendChoice::Simd, || {
            bench.iter(|| {
                linalg::gemm_a_bt(black_box(&input), black_box(&weight), &mut out, batch, k, n);
                black_box(&out);
            })
        })
    });

    let mut device = HostDevice::new();
    let q = quantize_rows(&weight, k);
    let wbuf = device.upload_i8(&q.values);
    let sbuf = device.upload_f32(&q.scales);
    group.bench_function("int8", |bench| {
        bench.iter(|| {
            device.gemm_i8(black_box(&input), wbuf, sbuf, &bias, &mut out, batch, k, n, false);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_quant_serve_step(c: &mut Criterion) {
    // One full compiled-plan forward of the default MARS CNN at a serving
    // micro-batch — the inference core of `ServeEngine::step` — float plan
    // vs the int8 plan derived from it.
    let batch = 8usize;
    let model = build_mars_cnn(&ModelConfig::default(), 5).expect("model builds");
    let graph = LoweringRequest::new(&model, &[5, 8, 8]).lower().expect("lowers");
    let mut float_plan = graph.compile(batch).expect("compiles");
    let mut quant_plan = float_plan.quantize().expect("quantizes");
    let input: Vec<f32> = (0..batch * 5 * 8 * 8).map(|i| (i % 23) as f32 * 0.05).collect();

    let mut group = c.benchmark_group("quant_serve_step/mars_batch8");
    group.bench_function("float_plan", |bench| {
        bench.iter(|| {
            let out = float_plan.run(black_box(&input), batch).expect("runs");
            black_box(out[0]);
        })
    });
    group.bench_function("int8_plan", |bench| {
        bench.iter(|| {
            let out = quant_plan.run(black_box(&input), batch).expect("runs");
            black_box(out[0]);
        })
    });
    group.finish();

    // The full engine step at the same micro-batch, int8 plan hot-swapped
    // in: fusion + featurization + quantized inference per frame.
    let dir = std::env::temp_dir().join("fuse_quant_serve_step_bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mars-int8.fplan");
    let donor = ServeEngine::new(
        build_mars_cnn(&ModelConfig::default(), 5).expect("model builds"),
        ServeConfig::default(),
    )
    .expect("engine builds");
    donor.export_quantized_plan(&path).expect("export succeeds");
    let mut engine = ServeEngine::new(
        build_mars_cnn(&ModelConfig::default(), 5).expect("model builds"),
        ServeConfig::default(),
    )
    .expect("engine builds");
    engine.hot_swap_plan(&path).expect("swap succeeds");
    std::fs::remove_dir_all(&dir).ok();

    let streams = fuse_bench::subject_streams(batch, 1);
    for id in 0..batch as u64 {
        engine.open_session(SessionConfig::new(id)).expect("session opens");
    }
    c.bench_function("quant_serve_step/engine_step_8_sessions", |bench| {
        bench.iter(|| {
            for (id, stream) in streams.iter().enumerate() {
                engine.submit(id as u64, stream[0].clone()).expect("submit succeeds");
            }
            engine.step().expect("step succeeds");
            black_box(engine.take_responses());
        })
    });
}

criterion_group!(benches, bench_int8_gemm, bench_quant_serve_step);
criterion_main!(benches);
