//! Figure 3 harness: baseline vs FUSE adaptation to an unseen user/movement,
//! fine-tuning **all layers**. Prints the per-epoch MAE series for the new
//! and original data and writes `target/experiment-results/figure3.csv`.

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::figure3;
use fuse_core::experiments::profile::ExperimentProfile;

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Figure 3 — adaptation, all layers", &profile.name);

    match figure3::run(&profile) {
        Ok(result) => {
            println!("{}", figure3::render(&result));
            let epochs = 5.min(result.fuse.epochs());
            println!(
                "After {epochs} fine-tuning epochs: baseline new-data MAE {:.1} cm, FUSE new-data MAE {:.1} cm",
                result.baseline.new_error_at(epochs).average_cm(),
                result.fuse.new_error_at(epochs).average_cm()
            );
            if let Some(speedup) = result.adaptation_speedup(epochs) {
                println!(
                    "Adaptation speed-up over the baseline: {speedup:.1}x (paper reports ~4x)"
                );
            }
            match result.write_csv("figure3") {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
        Err(e) => eprintln!("figure 3 experiment failed: {e}"),
    }
    finish_experiment("figure3_adapt_all_layers", timer);
}
