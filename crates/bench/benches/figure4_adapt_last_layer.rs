//! Figure 4 harness: baseline vs FUSE adaptation to an unseen user/movement,
//! fine-tuning **only the last fully-connected layer**. Prints the per-epoch
//! MAE series and writes `target/experiment-results/figure4.csv`.

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::figure4;
use fuse_core::experiments::profile::ExperimentProfile;

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Figure 4 — adaptation, last layer only", &profile.name);

    match figure4::run(&profile) {
        Ok(result) => {
            println!("{}", figure4::render(&result));
            let epochs = 5.min(result.fuse.epochs());
            println!(
                "After {epochs} fine-tuning epochs: baseline new-data MAE {:.1} cm, FUSE new-data MAE {:.1} cm",
                result.baseline.new_error_at(epochs).average_cm(),
                result.fuse.new_error_at(epochs).average_cm()
            );
            match result.write_csv("figure4") {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
        Err(e) => eprintln!("figure 4 experiment failed: {e}"),
    }
    finish_experiment("figure4_adapt_last_layer", timer);
}
