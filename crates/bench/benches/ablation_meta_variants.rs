//! Ablation harness: design choices of the meta-learning component.
//!
//! DESIGN.md commits to first-order MAML (FOMAML) as the substitution for the
//! paper's MAML implementation. This harness quantifies that choice by
//! meta-training the same model with (a) FOMAML, (b) Reptile-style outer
//! updates and (c) no meta-training at all (supervised only), then measuring
//! how quickly each adapts to the held-out user/movement.

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::adaptation;
use fuse_core::experiments::profile::ExperimentProfile;
use fuse_core::experiments::report;
use fuse_core::finetune::{fine_tune, FineTuneScope};
use fuse_core::meta::{MetaTrainer, MetaVariant};
use fuse_core::model::build_mars_cnn;
use fuse_core::Trainer;

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Ablation — meta-learning variants", &profile.name);

    let result = (|| -> Result<(), fuse_core::FuseError> {
        // Reuse the adaptation context for the datasets; retrain the offline
        // models per variant below.
        let context = adaptation::prepare(&profile)?;
        let config = profile.finetune_config(FineTuneScope::AllLayers);
        let mut rows = Vec::new();

        let variants: Vec<(&str, Option<MetaVariant>)> = vec![
            ("supervised (no meta)", None),
            ("FOMAML (default)", Some(MetaVariant::Fomaml)),
            ("Reptile", Some(MetaVariant::Reptile)),
        ];

        for (label, variant) in variants {
            let mut model = match variant {
                None => {
                    let model = build_mars_cnn(&profile.model, profile.seed)?;
                    let mut trainer = Trainer::new(model, profile.trainer)?;
                    trainer.fit(&context.train, None)?;
                    trainer.into_model()
                }
                Some(v) => {
                    let model = build_mars_cnn(&profile.model, profile.seed.wrapping_add(1))?;
                    let meta_config = fuse_core::MetaConfig { variant: v, ..profile.meta };
                    let mut trainer = MetaTrainer::new(model, meta_config)?;
                    trainer.train(&context.train)?;
                    trainer.into_model()
                }
            };
            let curve = fine_tune(
                &mut model,
                &context.finetune,
                &context.new_eval,
                &context.original_eval,
                &config,
            )?;
            let e5 = 5.min(curve.epochs());
            rows.push(vec![
                label.to_string(),
                format!("{:.1}", curve.new_error_at(0).average_cm()),
                format!("{:.1}", curve.new_error_at(e5).average_cm()),
                format!("{:.1}", curve.new_error_at(curve.epochs()).average_cm()),
                format!("{:.1}", curve.original_error_at(curve.epochs()).average_cm()),
            ]);
        }

        println!(
            "{}",
            report::format_table(
                "Ablation: adaptation behaviour per meta-learning variant (MAE on new data, cm)",
                &["Variant", "0 epochs", "5 epochs", "final", "original @ final"],
                &rows,
            )
        );
        report::write_csv(
            "ablation_meta_variants",
            &["variant", "new_0_epochs_cm", "new_5_epochs_cm", "new_final_cm", "original_final_cm"],
            &rows,
        )
        .map(|p| println!("wrote {}", p.display()))?;
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("ablation experiment failed: {e}");
    }
    finish_experiment("ablation_meta_variants", timer);
}
