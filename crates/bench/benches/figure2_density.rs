//! Figure 2 harness: information content of single-frame vs multi-frame
//! mmWave point clouds (the quantitative claim behind the paper's
//! visual comparison).

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::figure2;
use fuse_core::experiments::profile::ExperimentProfile;

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Figure 2 — point-cloud information content", &profile.name);

    match figure2::run(&profile) {
        Ok(result) => {
            println!("{}", result.render_table());
            match result.write_csv() {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
        Err(e) => eprintln!("figure 2 experiment failed: {e}"),
    }
    finish_experiment("figure2_density", timer);
}
