//! Multi-subject serving throughput: N concurrent sessions streaming frames
//! through one `fuse-serve` micro-batched engine.
//!
//! This is the scaling story behind the FUSE edge deployment — ACCoRD-style
//! learned inference in a real-time loop, but for many clients at once. Each
//! step stacks every session's pending frame into a single forward pass, so
//! the per-frame cost should grow sublinearly with the session count on
//! multi-core hosts. A checkpoint hot-swap timing rounds out the ops picture.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_core::prelude::*;
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_serve::{ServeConfig, ServeEngine};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

/// Movements cycled across the simulated subjects.
const MOVEMENTS: [Movement; 4] = [
    Movement::Squat,
    Movement::LeftUpperLimbExtension,
    Movement::BothUpperLimbExtension,
    Movement::RightLimbExtension,
];

/// Pre-generates `frames` point-cloud frames for each of `subjects` clients,
/// so the bench loop measures serving, not scene synthesis.
fn subject_streams(subjects: usize, frames: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..subjects)
        .map(|s| {
            let animator = MovementAnimator::new(
                Subject::profile(s % 4),
                MOVEMENTS[s % MOVEMENTS.len()],
                10.0,
            )
            .with_seed(s as u64);
            let samples = animator.sample_frames_with_velocities(0.0, frames);
            samples
                .iter()
                .enumerate()
                .map(|(i, (skeleton, velocities))| {
                    let scene: Scene = body_surface_points(skeleton, velocities, 4)
                        .iter()
                        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                        .collect();
                    scatter.sample(&scene, (s * frames + i) as u64)
                })
                .collect()
        })
        .collect()
}

fn engine_with_sessions(subjects: usize) -> ServeEngine {
    let model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    for s in 0..subjects {
        engine.open_session(s as u64).expect("session opens");
    }
    engine
}

fn bench_serving_step(c: &mut Criterion) {
    for subjects in [1usize, 4, 16] {
        let streams = subject_streams(subjects, 8);
        let mut engine = engine_with_sessions(subjects);
        let mut round = 0usize;
        c.bench_function(&format!("serve_step_{subjects}_sessions"), |b| {
            b.iter(|| {
                let frame_idx = round % streams[0].len();
                round += 1;
                for (s, stream) in streams.iter().enumerate() {
                    engine.submit(s as u64, stream[frame_idx].clone()).expect("submit succeeds");
                }
                black_box(engine.step().expect("step succeeds"))
            })
        });
    }
}

fn bench_hot_swap(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("fuse_serve_bench_hot_swap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ckpt.json");
    let mut engine = engine_with_sessions(1);
    engine.save_checkpoint("bench", &path).expect("checkpoint saves");
    c.bench_function("serve_checkpoint_hot_swap", |b| {
        b.iter(|| black_box(engine.hot_swap(black_box(&path)).expect("hot swap succeeds")))
    });
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_serving_step, bench_hot_swap);
criterion_main!(benches);
