//! Multi-subject serving throughput: N concurrent sessions streaming frames
//! through one `fuse-serve` micro-batched engine.
//!
//! This is the scaling story behind the FUSE edge deployment — ACCoRD-style
//! learned inference in a real-time loop, but for many clients at once. Each
//! step stacks every session's pending frame into a single forward pass, so
//! the per-frame cost should grow sublinearly with the session count on
//! multi-core hosts. A checkpoint hot-swap timing rounds out the ops picture.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_bench::subject_streams;
use fuse_core::prelude::*;
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};

fn engine_with_sessions(subjects: usize) -> ServeEngine {
    let model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    for s in 0..subjects {
        engine.open_session(SessionConfig::new(s as u64)).expect("session opens");
    }
    engine
}

fn bench_serving_step(c: &mut Criterion) {
    for subjects in [1usize, 4, 16] {
        let streams = subject_streams(subjects, 8);
        let mut engine = engine_with_sessions(subjects);
        let mut round = 0usize;
        c.bench_function(&format!("serve_step_{subjects}_sessions"), |b| {
            b.iter(|| {
                let frame_idx = round % streams[0].len();
                round += 1;
                for (s, stream) in streams.iter().enumerate() {
                    engine.submit(s as u64, stream[frame_idx].clone()).expect("submit succeeds");
                }
                engine.step().expect("step succeeds");
                black_box(engine.take_responses())
            })
        });
    }
}

fn bench_hot_swap(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("fuse_serve_bench_hot_swap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ckpt.json");
    let mut engine = engine_with_sessions(1);
    engine.save_checkpoint("bench", &path).expect("checkpoint saves");
    c.bench_function("serve_checkpoint_hot_swap", |b| {
        b.iter(|| black_box(engine.hot_swap(black_box(&path)).expect("hot swap succeeds")))
    });
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_serving_step, bench_hot_swap);
criterion_main!(benches);
