//! Table 1 harness: MAE of the baseline model under different frame-fusion
//! settings (single frame, fuse 3 frames, fuse 5 frames).
//!
//! Prints the same rows as Table 1 of the paper and writes
//! `target/experiment-results/table1.csv`.

use fuse_bench::{finish_experiment, start_experiment};
use fuse_core::experiments::profile::ExperimentProfile;
use fuse_core::experiments::table1;

fn main() {
    let profile = ExperimentProfile::from_env();
    let timer = start_experiment("Table 1 — multi-frame fusion ablation", &profile.name);

    match table1::run(&profile) {
        Ok(result) => {
            println!("{}", result.render_table());
            match (result.average_for(1), result.average_for(3)) {
                (Some(single), Some(fused3)) => {
                    let reduction = 100.0 * (single - fused3) / single;
                    println!(
                        "Fusing 3 frames changes the average MAE from {single:.1} cm to {fused3:.1} cm ({reduction:+.0} % vs single frame; the paper reports -34 %).",
                    );
                }
                _ => println!("warning: missing fusion settings in the result"),
            }
            match result.write_csv() {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
        Err(e) => eprintln!("table 1 experiment failed: {e}"),
    }
    finish_experiment("table1_frame_fusion", timer);
}
