//! Benchmarks of the `.fplan` artifact path: serializing a compiled plan,
//! deserializing it back (the edge-device startup cost that replaces a full
//! lowering + compile), and the JSON-checkpoint baseline it displaces. The
//! telemetry artifact carries the encode/decode times and the startup gap so
//! CI can watch the deployment path regress.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_graph::ExecPlan;
use fuse_nn::{Checkpoint, LoweringRequest, Sequential};

/// Per-sample input dimensions of the MARS feature map.
const INPUT_DIMS: [usize; 3] = [5, 8, 8];

fn mars_model() -> Sequential {
    build_mars_cnn(&ModelConfig::default(), 11).expect("model builds")
}

fn compile_mars(model: &Sequential, max_batch: usize) -> ExecPlan {
    LoweringRequest::new(model, &INPUT_DIMS)
        .lower()
        .and_then(|graph| graph.compile(max_batch))
        .expect("the MARS CNN lowers and compiles")
}

/// Serializing the compiled MARS plan to `.fplan` bytes (header + payload +
/// FNV-1a checksum) and the JSON checkpoint encode it displaces.
fn bench_artifact_encode(c: &mut Criterion) {
    let model = mars_model();
    let plan = compile_mars(&model, 32);
    let checkpoint = Checkpoint::capture(&model, "mars");
    let mut group = c.benchmark_group("artifact_encode");
    group.bench_function("fplan_to_bytes", |b| b.iter(|| black_box(plan.to_bytes())));
    group.bench_function("checkpoint_to_json", |b| {
        b.iter(|| black_box(checkpoint.to_json().expect("encodes")))
    });
    group.finish();
}

/// Deserializing `.fplan` bytes into a runnable plan — the whole edge
/// startup — against the legacy startup it replaces: parse a JSON
/// checkpoint, apply it, lower and compile.
fn bench_artifact_decode(c: &mut Criterion) {
    let model = mars_model();
    let bytes = compile_mars(&model, 32).to_bytes();
    let json = Checkpoint::capture(&model, "mars").to_json().expect("encodes");
    let mut group = c.benchmark_group("artifact_decode");
    group.bench_function("fplan_from_bytes", |b| {
        b.iter(|| black_box(ExecPlan::from_bytes(black_box(&bytes)).expect("decodes")))
    });
    group.bench_function("checkpoint_apply_then_compile", |b| {
        b.iter(|| {
            let checkpoint = Checkpoint::from_json(black_box(&json)).expect("decodes");
            let mut restored = mars_model();
            checkpoint.apply_to(&mut restored).expect("applies");
            black_box(compile_mars(&restored, 32))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_artifact_encode, bench_artifact_decode);
criterion_main!(benches);
