//! Benchmarks of the compiled execution-plan path (`fuse-graph`) against the
//! legacy layer-by-layer `Sequential::forward` walk it replaces, on the MARS
//! CNN the serving engine deploys. The plan's fused steps and pre-planned
//! arena eliminate per-layer dispatch, the standalone ReLU passes and every
//! steady-state heap allocation; the telemetry artifact carries the gap per
//! batch size and per backend so CI can watch it regress.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fuse_backend::{with_backend, BackendChoice};
use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_graph::ExecPlan;
use fuse_nn::{LoweringRequest, Sequential};
use fuse_tensor::Tensor;

/// Per-sample input dimensions of the MARS feature map.
const INPUT_DIMS: [usize; 3] = [5, 8, 8];

/// The two concrete backends, matching the `<kernel>/scalar` / `<kernel>/simd`
/// ID convention of `micro_kernels.rs`.
const BACKENDS: [(&str, BackendChoice); 2] =
    [("scalar", BackendChoice::Scalar), ("simd", BackendChoice::Simd)];

fn compile_mars(model: &Sequential, max_batch: usize) -> ExecPlan {
    LoweringRequest::new(model, &INPUT_DIMS)
        .lower()
        .and_then(|graph| graph.compile(max_batch))
        .expect("the MARS CNN lowers and compiles")
}

/// Compiled plan vs the legacy walk at serving batch sizes. Outputs are
/// bit-identical (gated by `tests/tests/plan_equivalence.rs`); only the time
/// differs.
fn bench_plan_vs_legacy(c: &mut Criterion) {
    let mut model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    let mut group = c.benchmark_group("mars_forward");
    for &batch in &[1usize, 8, 32] {
        let input = Tensor::randn(&[batch, 5, 8, 8], 1.0, 3);
        let mut plan = compile_mars(&model, batch);
        group.bench_with_input(BenchmarkId::new("plan", batch), &batch, |b, &batch| {
            b.iter(|| {
                black_box(plan.run(black_box(input.as_slice()), batch).expect("plan runs"));
            })
        });
        group.bench_with_input(BenchmarkId::new("legacy", batch), &batch, |b, _| {
            b.iter(|| {
                black_box(model.forward(black_box(&input), false).expect("forward succeeds"));
            })
        });
    }
    group.finish();
}

/// One-time compilation cost (lowering + rewrite passes + arena planning):
/// what a session pays at open/adapt/hot-swap before the allocation-free
/// steady state begins.
fn bench_plan_compile(c: &mut Criterion) {
    let model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    c.bench_function("mars_plan_compile_batch32", |b| {
        b.iter(|| black_box(compile_mars(black_box(&model), 32)))
    });
}

/// The plan path pinned to each backend, so the artifact carries the SIMD
/// speedup of the fused hot loop alongside the `micro_kernels.rs` numbers.
fn bench_plan_backend_comparison(c: &mut Criterion) {
    let model = build_mars_cnn(&ModelConfig::default(), 11).expect("model builds");
    let batch = 32usize;
    let input = Tensor::randn(&[batch, 5, 8, 8], 1.0, 3);
    let mut plan = compile_mars(&model, batch);
    let mut group = c.benchmark_group("mars_plan_batch32_backend");
    for (label, choice) in BACKENDS {
        group.bench_function(label, |bench| {
            with_backend(choice, || {
                bench.iter(|| {
                    black_box(plan.run(black_box(input.as_slice()), batch).expect("plan runs"));
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_vs_legacy, bench_plan_compile, bench_plan_backend_comparison);
criterion_main!(benches);
