//! Latency bench: per-stage and end-to-end timing of the deployed FUSE
//! pipeline against the 100 ms frame budget of the 10 Hz radar (the paper's
//! "fast, low computational requirement" claim, §1/§5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_core::prelude::*;
use fuse_dataset::FrameFusion;
use fuse_radar::{
    AdcCube, FastScatterModel, PointCloudFrame, PointCloudGenerator, RadarConfig, RangeDopplerMap,
    Scatterer, Scene,
};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;

fn human_scene(frame: usize) -> Scene {
    let animator = MovementAnimator::new(Subject::profile(1), Movement::Squat, 10.0).with_seed(5);
    let samples = animator.sample_frames_with_velocities(0.0, frame + 2);
    let (skeleton, velocities) = &samples[frame + 1];
    body_surface_points(skeleton, velocities, 4)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

fn frame_history(n: usize) -> Vec<PointCloudFrame> {
    let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..n).map(|i| model.sample(&human_scene(i), i as u64)).collect()
}

fn bench_acquisition(c: &mut Criterion) {
    let scene = human_scene(0);
    let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    c.bench_function("acquire_point_cloud_fast_model", |b| {
        b.iter(|| black_box(model.sample(black_box(&scene), 7)))
    });

    // The full FMCW chain on the reduced test configuration (the reference
    // signal path a real device would execute in hardware).
    let full = PointCloudGenerator::new(RadarConfig::test_small());
    c.bench_function("acquire_point_cloud_full_fmcw_chain", |b| {
        b.iter(|| black_box(full.generate(black_box(&scene), 7).expect("signal chain succeeds")))
    });
}

fn bench_signal_chain_stages(c: &mut Criterion) {
    let config = RadarConfig::test_small();
    let scene = human_scene(0);
    let cube = AdcCube::synthesize(&config, &scene, 3).expect("cube synthesis succeeds");
    c.bench_function("range_doppler_processing", |b| {
        b.iter(|| black_box(RangeDopplerMap::from_cube(black_box(&cube)).expect("fft succeeds")))
    });
}

fn bench_preprocessing(c: &mut Criterion) {
    let history = frame_history(5);
    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();
    c.bench_function("fusion_plus_feature_map", |b| {
        b.iter(|| {
            let points = fusion.fused_points_owned(black_box(&history), 4);
            black_box(builder.build(&points, None).expect("feature map builds"))
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let mut model = build_mars_cnn(&ModelConfig::default(), 1).expect("model builds");
    let input = Tensor::randn(&[1, 5, 8, 8], 1.0, 2);
    c.bench_function("cnn_inference_single_frame", |b| {
        b.iter(|| black_box(model.forward(black_box(&input), false).expect("forward succeeds")))
    });

    let batch = Tensor::randn(&[32, 5, 8, 8], 1.0, 3);
    c.bench_function("cnn_inference_batch32", |b| {
        b.iter(|| black_box(model.forward(black_box(&batch), false).expect("forward succeeds")))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();
    let mut model = build_mars_cnn(&ModelConfig::default(), 4).expect("model builds");
    let scene = human_scene(1);
    let mut history = frame_history(3);

    c.bench_function("end_to_end_frame_budget_100ms", |b| {
        b.iter(|| {
            let frame = scatter.sample(black_box(&scene), 9);
            history.push(frame);
            if history.len() > 3 {
                history.remove(0);
            }
            let points = fusion.fused_points_owned(&history, history.len() - 1);
            let features = builder.build(&points, None).expect("feature map builds");
            let input = Tensor::stack(&[features]).expect("stack succeeds");
            black_box(model.forward(&input, false).expect("forward succeeds"))
        })
    });
}

criterion_group!(
    benches,
    bench_acquisition,
    bench_signal_chain_stages,
    bench_preprocessing,
    bench_inference,
    bench_end_to_end
);
criterion_main!(benches);
