//! Latency bench: per-stage and end-to-end timing of the deployed FUSE
//! pipeline against the 100 ms frame budget of the 10 Hz radar (the paper's
//! "fast, low computational requirement" claim, §1/§5).
//!
//! The preprocessing and end-to-end stages run through `fuse-serve` — the
//! same Session/ServeEngine code path the `realtime_edge` example and the
//! `multi_subject_serving` bench use — so these numbers measure the deployed
//! subsystem, not a bench-local copy of the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fuse_core::prelude::*;
use fuse_radar::{
    AdcCube, FastScatterModel, PointCloudFrame, PointCloudGenerator, RadarConfig, RangeDopplerMap,
    Scatterer, Scene,
};
use fuse_serve::{ServeConfig, ServeEngine, Session, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;

fn human_scene(frame: usize) -> Scene {
    let animator = MovementAnimator::new(Subject::profile(1), Movement::Squat, 10.0).with_seed(5);
    let samples = animator.sample_frames_with_velocities(0.0, frame + 2);
    let (skeleton, velocities) = &samples[frame + 1];
    body_surface_points(skeleton, velocities, 4)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

fn frame_history(n: usize) -> Vec<PointCloudFrame> {
    let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..n).map(|i| model.sample(&human_scene(i), i as u64)).collect()
}

fn bench_acquisition(c: &mut Criterion) {
    let scene = human_scene(0);
    let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    c.bench_function("acquire_point_cloud_fast_model", |b| {
        b.iter(|| black_box(model.sample(black_box(&scene), 7)))
    });

    // The full FMCW chain on the reduced test configuration (the reference
    // signal path a real device would execute in hardware).
    let full = PointCloudGenerator::new(RadarConfig::test_small());
    c.bench_function("acquire_point_cloud_full_fmcw_chain", |b| {
        b.iter(|| black_box(full.generate(black_box(&scene), 7).expect("signal chain succeeds")))
    });
}

fn bench_signal_chain_stages(c: &mut Criterion) {
    let config = RadarConfig::test_small();
    let scene = human_scene(0);
    let cube = AdcCube::synthesize(&config, &scene, 3).expect("cube synthesis succeeds");
    c.bench_function("range_doppler_processing", |b| {
        b.iter(|| black_box(RangeDopplerMap::from_cube(black_box(&cube)).expect("fft succeeds")))
    });
}

fn bench_preprocessing(c: &mut Criterion) {
    // Session-side preprocessing: fusion over the rolling history plus
    // feature-map construction, exactly as the serving engine performs it.
    let mut session = Session::new(SessionConfig::new(0));
    for frame in frame_history(5) {
        session.push_frame(frame);
    }
    c.bench_function("fusion_plus_feature_map", |b| {
        b.iter(|| black_box(black_box(&session).featurize_latest().expect("feature map builds")))
    });
}

fn bench_inference(c: &mut Criterion) {
    let mut model = build_mars_cnn(&ModelConfig::default(), 1).expect("model builds");
    let input = Tensor::randn(&[1, 5, 8, 8], 1.0, 2);
    c.bench_function("cnn_inference_single_frame", |b| {
        b.iter(|| black_box(model.forward(black_box(&input), false).expect("forward succeeds")))
    });

    let batch = Tensor::randn(&[32, 5, 8, 8], 1.0, 3);
    c.bench_function("cnn_inference_batch32", |b| {
        b.iter(|| black_box(model.forward(black_box(&batch), false).expect("forward succeeds")))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // Submit-plus-step through the serving engine: acquisition, session
    // fusion, feature map and the stacked CNN forward — the full per-frame
    // path a deployed 10 Hz loop executes.
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let model = build_mars_cnn(&ModelConfig::default(), 4).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    engine.open_session(SessionConfig::new(0)).expect("session opens");
    for frame in frame_history(3) {
        engine.submit(0, frame).expect("submit succeeds");
    }
    engine.step().expect("warm-up step succeeds");
    engine.take_responses();
    let scene = human_scene(1);

    c.bench_function("end_to_end_frame_budget_100ms", |b| {
        b.iter(|| {
            let frame = scatter.sample(black_box(&scene), 9);
            engine.submit(0, frame).expect("submit succeeds");
            engine.step().expect("step succeeds");
            black_box(engine.take_responses())
        })
    });
}

criterion_group!(
    benches,
    bench_acquisition,
    bench_signal_chain_stages,
    bench_preprocessing,
    bench_inference,
    bench_end_to_end
);
criterion_main!(benches);
