//! Micro-benchmarks of the numerical kernels underneath the FUSE pipeline:
//! GEMM, im2col convolution, FFT and CFAR. These bound the cost of every
//! higher-level experiment and document where the CPU time goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fuse_backend::{with_backend, BackendChoice};
use fuse_radar::{cfar_ca_1d, fft_inplace, CfarConfig, Complex32};
use fuse_tensor::{conv2d_forward, linalg, Conv2dSpec, Tensor};

/// The two concrete backends, in the order the scalar-vs-simd bench IDs
/// (`<kernel>/scalar`, `<kernel>/simd`) are emitted.
const BACKENDS: [(&str, BackendChoice); 2] =
    [("scalar", BackendChoice::Scalar), ("simd", BackendChoice::Simd)];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|i| (i % 17) as f32 * 0.1).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 * 0.2).collect();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                linalg::gemm(black_box(&a), black_box(&b), &mut out, n, n, n);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_linear_layer_gemm(c: &mut Criterion) {
    // The dominant cost of the MARS CNN: the 2048 -> 512 fully-connected layer.
    let batch = 64usize;
    let input: Vec<f32> = (0..batch * 2048).map(|i| (i % 7) as f32 * 0.01).collect();
    let weight: Vec<f32> = (0..512 * 2048).map(|i| (i % 11) as f32 * 0.001).collect();
    let mut out = vec![0.0f32; batch * 512];
    c.bench_function("fc_2048x512_batch64", |b| {
        b.iter(|| {
            linalg::gemm_a_bt(black_box(&input), black_box(&weight), &mut out, batch, 2048, 512);
            black_box(&out);
        })
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let spec = Conv2dSpec::same(5, 16, 3);
    let input = Tensor::randn(&[32, 5, 8, 8], 1.0, 1);
    let weight = Tensor::randn(&[16, 5, 3, 3], 0.5, 2);
    let bias = Tensor::zeros(&[16]);
    c.bench_function("conv2d_5to16_8x8_batch32", |b| {
        b.iter(|| {
            black_box(
                conv2d_forward(black_box(&input), &weight, &bias, &spec).expect("conv succeeds"),
            )
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[64usize, 256, 1024] {
        let data: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.31).sin(), (i as f32 * 0.17).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut buf = data.clone();
                fft_inplace(&mut buf).expect("power-of-two length");
                black_box(buf);
            })
        });
    }
    group.finish();
}

/// Scalar-vs-SIMD comparison IDs: the same GEMM / fully-connected / conv2d
/// workloads pinned to each backend, so the telemetry artifact carries the
/// per-host SIMD speedup (and CI can watch it regress). Results are
/// bit-identical between the two legs — only the time differs.
fn bench_backend_comparison(c: &mut Criterion) {
    let n = 128usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 17) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 * 0.2).collect();
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("gemm_128_backend");
    for (label, choice) in BACKENDS {
        group.bench_function(label, |bench| {
            with_backend(choice, || {
                bench.iter(|| {
                    linalg::gemm(black_box(&a), black_box(&b), &mut out, n, n, n);
                    black_box(&out);
                })
            })
        });
    }
    group.finish();

    let batch = 64usize;
    let input: Vec<f32> = (0..batch * 2048).map(|i| (i % 7) as f32 * 0.01).collect();
    let weight: Vec<f32> = (0..512 * 2048).map(|i| (i % 11) as f32 * 0.001).collect();
    let mut fc_out = vec![0.0f32; batch * 512];
    let mut group = c.benchmark_group("fc_2048x512_batch64_backend");
    for (label, choice) in BACKENDS {
        group.bench_function(label, |bench| {
            with_backend(choice, || {
                bench.iter(|| {
                    linalg::gemm_a_bt(
                        black_box(&input),
                        black_box(&weight),
                        &mut fc_out,
                        batch,
                        2048,
                        512,
                    );
                    black_box(&fc_out);
                })
            })
        });
    }
    group.finish();

    let spec = Conv2dSpec::same(5, 16, 3);
    let conv_input = Tensor::randn(&[32, 5, 8, 8], 1.0, 1);
    let conv_weight = Tensor::randn(&[16, 5, 3, 3], 0.5, 2);
    let conv_bias = Tensor::zeros(&[16]);
    let mut group = c.benchmark_group("conv2d_5to16_8x8_batch32_backend");
    for (label, choice) in BACKENDS {
        group.bench_function(label, |bench| {
            with_backend(choice, || {
                bench.iter(|| {
                    black_box(
                        conv2d_forward(black_box(&conv_input), &conv_weight, &conv_bias, &spec)
                            .expect("conv succeeds"),
                    )
                })
            })
        });
    }
    group.finish();
}

fn bench_cfar(c: &mut Criterion) {
    let mut profile = vec![1.0f32; 512];
    profile[100] = 40.0;
    profile[300] = 25.0;
    let config = CfarConfig::default();
    c.bench_function("cfar_ca_1d_512", |b| {
        b.iter(|| black_box(cfar_ca_1d(black_box(&profile), &config).expect("valid window")))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_linear_layer_gemm,
    bench_conv2d,
    bench_backend_comparison,
    bench_fft,
    bench_cfar
);
criterion_main!(benches);
