//! Serial-vs-parallel equivalence properties for the tensor kernels.
//!
//! Every parallel hot path must produce **bit-identical** results for any
//! thread count: parallel work is banded over indexed units whose per-unit
//! floating-point order is fixed, and reductions merge partials in index
//! order. These properties pin that contract by running each kernel with the
//! thread count forced to 1 and to 4 inside the same process (the parallel
//! side also forces the work threshold to zero, so even proptest-sized inputs
//! take the parallel path) and comparing outputs with exact equality.

use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, linalg, Conv2dSpec, Tensor,
};
use proptest::prelude::*;

/// Runs `f` once with 1 thread and once with 4 threads (parallel dispatch
/// forced for any input size) and returns both results.
fn serial_and_parallel<R>(f: impl Fn() -> R) -> (R, R) {
    let serial = with_threads(1, &f);
    let parallel = with_threads(4, || with_min_parallel_work(0, &f));
    (serial, parallel)
}

const DIM: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// gemm and gemm_acc: parallel output is bit-identical to serial.
    #[test]
    fn gemm_and_acc_parallel_matches_serial(
        m in 1usize..DIM, k in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..m * k];
        let b = &data[DIM * DIM..DIM * DIM + k * n];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.25f32; m * n];
            linalg::gemm(a, b, &mut out, m, k, n);
            linalg::gemm_acc(a, b, &mut out, m, k, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// gemm_at_b (transposed lhs): parallel bands are bit-identical to serial.
    #[test]
    fn gemm_at_b_parallel_matches_serial(
        k in 1usize..DIM, m in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..k * m];
        let b = &data[DIM * DIM..DIM * DIM + k * n];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.0f32; m * n];
            linalg::gemm_at_b(a, b, &mut out, k, m, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// gemm_a_bt (transposed rhs): parallel rows are bit-identical to serial.
    #[test]
    fn gemm_a_bt_parallel_matches_serial(
        m in 1usize..DIM, k in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..m * k];
        let b = &data[DIM * DIM..DIM * DIM + n * k];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.0f32; m * n];
            linalg::gemm_a_bt(a, b, &mut out, m, k, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// conv2d forward: the sample-parallel path is bit-identical to serial.
    #[test]
    fn conv2d_forward_parallel_matches_serial(
        n in 1usize..3, c in 1usize..3, oc in 1usize..4,
        h in 3usize..7, w in 3usize..7,
        data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 6 * 6 + 3 * 2 * 9 + 3)
    ) {
        let spec = Conv2dSpec::same(c, oc, 3);
        let input = Tensor::from_vec(data[..n * c * h * w].to_vec(), &[n, c, h, w]).unwrap();
        let wlen = spec.weight_len();
        let weight =
            Tensor::from_vec(data[144..144 + wlen].to_vec(), &[oc, c, 3, 3]).unwrap();
        let bias = Tensor::from_vec(data[144 + 54..144 + 54 + oc].to_vec(), &[oc]).unwrap();
        let (serial, parallel) = serial_and_parallel(|| {
            conv2d_forward(&input, &weight, &bias, &spec).unwrap().as_slice().to_vec()
        });
        prop_assert_eq!(serial, parallel);
    }

    /// conv2d backward (input and weight/bias gradients): sample-parallel
    /// partials merged in order are bit-identical to serial accumulation.
    #[test]
    fn conv2d_backward_parallel_matches_serial(
        n in 1usize..3, c in 1usize..3, oc in 1usize..4,
        h in 3usize..7, w in 3usize..7,
        data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 6 * 6 + 3 * 2 * 9 + 2 * 3 * 6 * 6)
    ) {
        let spec = Conv2dSpec::same(c, oc, 3);
        let input = Tensor::from_vec(data[..n * c * h * w].to_vec(), &[n, c, h, w]).unwrap();
        let weight =
            Tensor::from_vec(data[144..144 + spec.weight_len()].to_vec(), &[oc, c, 3, 3]).unwrap();
        // Same-padding keeps the output spatial dims equal to the input's.
        let grad_out =
            Tensor::from_vec(data[198..198 + n * oc * h * w].to_vec(), &[n, oc, h, w]).unwrap();
        let (serial, parallel) = serial_and_parallel(|| {
            let gi = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec).unwrap();
            let (gw, gb) = conv2d_backward_weight(&input, &grad_out, &spec).unwrap();
            (gi.as_slice().to_vec(), gw.as_slice().to_vec(), gb.as_slice().to_vec())
        });
        prop_assert_eq!(serial, parallel);
    }
}
