//! Serial-vs-parallel and scalar-vs-SIMD equivalence properties for the
//! tensor kernels.
//!
//! Every hot path must produce **bit-identical** results for any thread
//! count *and* any kernel backend: parallel work is banded over indexed
//! units whose per-unit floating-point order is fixed, reductions merge
//! partials in index order, and the SIMD backend only vectorises across
//! independent output elements (`REPRODUCIBILITY.md`). These properties pin
//! both contracts inside one process — thread count forced to 1 vs 4 (the
//! parallel side also forces the work threshold to zero, so even
//! proptest-sized inputs take the parallel path), and the backend forced to
//! scalar vs SIMD — comparing outputs with exact equality.

use fuse_backend::{with_backend, BackendChoice};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, linalg, Conv2dSpec, Tensor,
};
use proptest::prelude::*;

/// Runs `f` once with 1 thread and once with 4 threads (parallel dispatch
/// forced for any input size) and returns both results.
fn serial_and_parallel<R>(f: impl Fn() -> R) -> (R, R) {
    let serial = with_threads(1, &f);
    let parallel = with_threads(4, || with_min_parallel_work(0, &f));
    (serial, parallel)
}

/// Runs `f` on the scalar reference (serially) and on the SIMD backend
/// (under parallel dispatch), crossing both contracts in one comparison.
fn scalar_and_simd<R>(f: impl Fn() -> R) -> (R, R) {
    let scalar = with_threads(1, || with_backend(BackendChoice::Scalar, &f));
    let simd =
        with_threads(4, || with_min_parallel_work(0, || with_backend(BackendChoice::Simd, &f)));
    (scalar, simd)
}

const DIM: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// gemm and gemm_acc: parallel output is bit-identical to serial.
    #[test]
    fn gemm_and_acc_parallel_matches_serial(
        m in 1usize..DIM, k in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..m * k];
        let b = &data[DIM * DIM..DIM * DIM + k * n];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.25f32; m * n];
            linalg::gemm(a, b, &mut out, m, k, n);
            linalg::gemm_acc(a, b, &mut out, m, k, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// gemm_at_b (transposed lhs): parallel bands are bit-identical to serial.
    #[test]
    fn gemm_at_b_parallel_matches_serial(
        k in 1usize..DIM, m in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..k * m];
        let b = &data[DIM * DIM..DIM * DIM + k * n];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.0f32; m * n];
            linalg::gemm_at_b(a, b, &mut out, k, m, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// gemm_a_bt (transposed rhs): parallel rows are bit-identical to serial.
    #[test]
    fn gemm_a_bt_parallel_matches_serial(
        m in 1usize..DIM, k in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 2 * DIM * DIM)
    ) {
        let a = &data[..m * k];
        let b = &data[DIM * DIM..DIM * DIM + n * k];
        let (serial, parallel) = serial_and_parallel(|| {
            let mut out = vec![0.0f32; m * n];
            linalg::gemm_a_bt(a, b, &mut out, m, k, n);
            out
        });
        prop_assert_eq!(serial, parallel);
    }

    /// conv2d forward: the sample-parallel path is bit-identical to serial.
    #[test]
    fn conv2d_forward_parallel_matches_serial(
        n in 1usize..3, c in 1usize..3, oc in 1usize..4,
        h in 3usize..7, w in 3usize..7,
        data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 6 * 6 + 3 * 2 * 9 + 3)
    ) {
        let spec = Conv2dSpec::same(c, oc, 3);
        let input = Tensor::from_vec(data[..n * c * h * w].to_vec(), &[n, c, h, w]).unwrap();
        let wlen = spec.weight_len();
        let weight =
            Tensor::from_vec(data[144..144 + wlen].to_vec(), &[oc, c, 3, 3]).unwrap();
        let bias = Tensor::from_vec(data[144 + 54..144 + 54 + oc].to_vec(), &[oc]).unwrap();
        let (serial, parallel) = serial_and_parallel(|| {
            conv2d_forward(&input, &weight, &bias, &spec).unwrap().as_slice().to_vec()
        });
        prop_assert_eq!(serial, parallel);
    }

    /// Matmul variants: the SIMD backend under parallel dispatch is
    /// bit-identical to the serial scalar reference for arbitrary shapes
    /// (1..12 covers sub-lane widths and non-multiples of both lane widths).
    #[test]
    fn gemm_family_simd_matches_scalar(
        m in 1usize..DIM, k in 1usize..DIM, n in 1usize..DIM,
        data in prop::collection::vec(-4.0f32..4.0, 3 * DIM * DIM)
    ) {
        let (scalar, simd) = scalar_and_simd(|| {
            let mut out = vec![0.5f32; m * n];
            linalg::gemm(&data[..m * k], &data[DIM * DIM..DIM * DIM + k * n], &mut out, m, k, n);
            linalg::gemm_acc(&data[..m * k], &data[DIM * DIM..DIM * DIM + k * n], &mut out, m, k, n);
            let mut out_at = vec![0.0f32; m * n];
            linalg::gemm_at_b(
                &data[..k * m], &data[DIM * DIM..DIM * DIM + k * n], &mut out_at, k, m, n,
            );
            let mut out_bt = vec![0.0f32; m * n];
            linalg::gemm_a_bt(
                &data[..m * k],
                &data[2 * DIM * DIM..2 * DIM * DIM + n * k],
                &mut out_bt,
                m,
                k,
                n,
            );
            (out, out_at, out_bt)
        });
        prop_assert_eq!(scalar, simd);
    }

    /// conv2d forward and backward on the SIMD backend (parallel) are
    /// bit-identical to the serial scalar reference.
    #[test]
    fn conv2d_simd_matches_scalar(
        n in 1usize..3, c in 1usize..3, oc in 1usize..4,
        h in 3usize..7, w in 3usize..7,
        data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 6 * 6 + 3 * 2 * 9 + 2 * 3 * 6 * 6)
    ) {
        let spec = Conv2dSpec::same(c, oc, 3);
        let input = Tensor::from_vec(data[..n * c * h * w].to_vec(), &[n, c, h, w]).unwrap();
        let weight =
            Tensor::from_vec(data[144..144 + spec.weight_len()].to_vec(), &[oc, c, 3, 3]).unwrap();
        let bias = Tensor::from_vec(data[144 + 54..144 + 54 + oc].to_vec(), &[oc]).unwrap();
        let grad_out =
            Tensor::from_vec(data[198..198 + n * oc * h * w].to_vec(), &[n, oc, h, w]).unwrap();
        let (scalar, simd) = scalar_and_simd(|| {
            let fwd = conv2d_forward(&input, &weight, &bias, &spec).unwrap();
            let gi = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec).unwrap();
            let (gw, gb) = conv2d_backward_weight(&input, &grad_out, &spec).unwrap();
            (
                fwd.as_slice().to_vec(),
                gi.as_slice().to_vec(),
                gw.as_slice().to_vec(),
                gb.as_slice().to_vec(),
            )
        });
        prop_assert_eq!(scalar, simd);
    }

    /// conv2d backward (input and weight/bias gradients): sample-parallel
    /// partials merged in order are bit-identical to serial accumulation.
    #[test]
    fn conv2d_backward_parallel_matches_serial(
        n in 1usize..3, c in 1usize..3, oc in 1usize..4,
        h in 3usize..7, w in 3usize..7,
        data in prop::collection::vec(-2.0f32..2.0, 2 * 2 * 6 * 6 + 3 * 2 * 9 + 2 * 3 * 6 * 6)
    ) {
        let spec = Conv2dSpec::same(c, oc, 3);
        let input = Tensor::from_vec(data[..n * c * h * w].to_vec(), &[n, c, h, w]).unwrap();
        let weight =
            Tensor::from_vec(data[144..144 + spec.weight_len()].to_vec(), &[oc, c, 3, 3]).unwrap();
        // Same-padding keeps the output spatial dims equal to the input's.
        let grad_out =
            Tensor::from_vec(data[198..198 + n * oc * h * w].to_vec(), &[n, oc, h, w]).unwrap();
        let (serial, parallel) = serial_and_parallel(|| {
            let gi = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec).unwrap();
            let (gw, gb) = conv2d_backward_weight(&input, &grad_out, &spec).unwrap();
            (gi.as_slice().to_vec(), gw.as_slice().to_vec(), gb.as_slice().to_vec())
        });
        prop_assert_eq!(serial, parallel);
    }
}

/// Deterministic remainder-path coverage: every matmul variant at widths 1,
/// 3, 7 and 17 — below the SSE lane width, below the AVX2 lane width, and
/// one past two AVX2 lanes — so the SIMD kernels' scalar tails and the
/// 4-row block kernel's odd-row tail are all exercised explicitly.
#[test]
fn matmul_variants_simd_matches_scalar_at_non_lane_multiple_widths() {
    for &m in &[1usize, 3, 7, 17] {
        for &k in &[1usize, 3, 7, 17] {
            for &n in &[1usize, 3, 7, 17] {
                let a: Vec<f32> =
                    (0..m.max(k) * k.max(m)).map(|i| ((i * 31) % 64) as f32 * 0.1 - 3.0).collect();
                let b: Vec<f32> =
                    (0..k * n + n * k).map(|i| ((i * 47) % 64) as f32 * 0.1 - 3.0).collect();
                let (scalar, simd) = scalar_and_simd(|| {
                    let mut g = vec![0.0f32; m * n];
                    linalg::gemm(&a[..m * k], &b[..k * n], &mut g, m, k, n);
                    let mut gacc = g.clone();
                    linalg::gemm_acc(&a[..m * k], &b[..k * n], &mut gacc, m, k, n);
                    let mut gt = vec![0.0f32; m * n];
                    linalg::gemm_at_b(&a[..k * m], &b[..k * n], &mut gt, k, m, n);
                    let mut gbt = vec![0.0f32; m * n];
                    linalg::gemm_a_bt(&a[..m * k], &b[..n * k], &mut gbt, m, k, n);
                    (g, gacc, gt, gbt)
                });
                assert_eq!(scalar, simd, "m={m} k={k} n={n}");
            }
        }
    }
}
