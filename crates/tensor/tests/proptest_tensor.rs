//! Property-based tests for the tensor substrate.

use fuse_tensor::{conv2d_forward, Conv2dSpec, Normalizer, Tensor};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("length matches shape"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Addition is commutative element-wise.
    #[test]
    fn add_is_commutative(a in small_matrix(3, 4), b in small_matrix(3, 4)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// (a - b) + b recovers a.
    #[test]
    fn sub_then_add_round_trips(a in small_matrix(2, 5), b in small_matrix(2, 5)) {
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Multiplying by the identity matrix is a no-op.
    #[test]
    fn matmul_identity(a in small_matrix(4, 4)) {
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(a in small_matrix(3, 3), b in small_matrix(3, 3), c in small_matrix(3, 3)) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// Transposing twice recovers the original matrix.
    #[test]
    fn transpose_involution(a in small_matrix(3, 5)) {
        let back = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(back, a);
    }

    /// Scaling scales the sum linearly.
    #[test]
    fn scale_is_linear_in_sum(a in small_matrix(2, 6), s in -3.0f32..3.0) {
        let scaled = a.scale(s);
        prop_assert!((scaled.sum() - s * a.sum()).abs() < 1e-2);
    }

    /// Reshape preserves every element and the sum.
    #[test]
    fn reshape_preserves_content(a in small_matrix(4, 6)) {
        let r = a.reshape(&[2, 12]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
        prop_assert!((r.sum() - a.sum()).abs() < 1e-4);
    }

    /// Stack then index recovers each original tensor.
    #[test]
    fn stack_then_index_round_trips(a in small_matrix(2, 3), b in small_matrix(2, 3)) {
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        prop_assert_eq!(s.index_axis0(0).unwrap(), a);
        prop_assert_eq!(s.index_axis0(1).unwrap(), b);
    }

    /// Normalise then invert recovers the original data.
    #[test]
    fn normalizer_round_trips(a in small_matrix(6, 3)) {
        let norm = Normalizer::fit(&a).unwrap();
        let back = norm.invert(&norm.apply(&a).unwrap()).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Convolution is linear in its input: conv(x1 + x2) = conv(x1) + conv(x2) - conv(0).
    #[test]
    fn conv_is_affine_in_input(
        x1 in prop::collection::vec(-2.0f32..2.0, 2 * 3 * 3),
        x2 in prop::collection::vec(-2.0f32..2.0, 2 * 3 * 3),
    ) {
        let spec = Conv2dSpec::same(2, 3, 3);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.5, 99);
        let bias = Tensor::randn(&[3], 0.1, 100);
        let t1 = Tensor::from_vec(x1, &[1, 2, 3, 3]).unwrap();
        let t2 = Tensor::from_vec(x2, &[1, 2, 3, 3]).unwrap();
        let zero = Tensor::zeros(&[1, 2, 3, 3]);

        let sum_out = conv2d_forward(&t1.add(&t2).unwrap(), &weight, &bias, &spec).unwrap();
        let o1 = conv2d_forward(&t1, &weight, &bias, &spec).unwrap();
        let o2 = conv2d_forward(&t2, &weight, &bias, &spec).unwrap();
        let oz = conv2d_forward(&zero, &weight, &bias, &spec).unwrap();
        let expected = o1.add(&o2).unwrap().sub(&oz).unwrap();
        for (x, y) in sum_out.as_slice().iter().zip(expected.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
