//! 2-D convolution primitives (im2col based).
//!
//! The MARS baseline CNN and the FUSE model both use small 2-D convolutions
//! over 8×8 feature maps. The forward pass lowers each input window into a
//! column matrix (im2col) and performs a single GEMM per sample; the backward
//! passes reuse the same lowering.

use fuse_backend::KernelBackend;
use fuse_parallel as par;
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::linalg;
use crate::tensor::Tensor;
use crate::Result;

/// Geometry of a 2-D convolution.
///
/// All convolutions in the FUSE models use square kernels, unit stride and
/// symmetric zero padding, but the spec keeps the fields general so the radar
/// feature experiments can vary them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Kernel height and width.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec with unit stride and "same" padding for odd kernels.
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Conv2dSpec { in_channels, out_channels, kernel, stride: 1, padding: kernel / 2 }
    }

    /// Output spatial size for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvolution`] when the padded input is
    /// smaller than the kernel or the stride is zero.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConvolution("stride must be nonzero".into()));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kernel || pw < self.kernel {
            return Err(TensorError::InvalidConvolution(format!(
                "padded input {ph}x{pw} smaller than kernel {k}x{k}",
                k = self.kernel
            )));
        }
        Ok(((ph - self.kernel) / self.stride + 1, (pw - self.kernel) / self.stride + 1))
    }

    /// Number of weight parameters (`out * in * k * k`).
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers a single `[C, H, W]` sample into an im2col matrix of shape
/// `[C*k*k, out_h*out_w]` stored row-major in `cols`, on the given backend
/// (row filling is pure data movement; the SIMD backend lowers stride-1 rows
/// with bulk copies).
///
/// Rows are independent, so large lowerings (single-sample inference with the
/// batch dimension unavailable for parallelism) fan out row-wise on the
/// `fuse-parallel` pool; inside a pool worker this runs inline.
fn im2col(
    be: &dyn KernelBackend,
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    cols: &mut [f32],
) {
    let (out_h, out_w) = spec.output_size(h, w).expect("output_size validated by caller");
    let k = spec.kernel;
    let n_cols = out_h * out_w;
    let rows = c * k * k;
    let cols = &mut cols[..rows * n_cols];
    if rows > 1 && par::parallel_beneficial(rows * n_cols) {
        par::par_chunks_mut(cols, n_cols, |row, row_out| {
            be.im2col_row(input, h, w, k, spec.stride, spec.padding, row, row_out, out_w);
        });
    } else {
        for (row, row_out) in cols.chunks_exact_mut(n_cols).enumerate() {
            be.im2col_row(input, h, w, k, spec.stride, spec.padding, row, row_out, out_w);
        }
    }
}

/// Scatters an im2col matrix back into a `[C, H, W]` gradient buffer
/// (the adjoint of [`im2col`]).
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, grad_input: &mut [f32]) {
    let (out_h, out_w) = spec.output_size(h, w).expect("output_size validated by caller");
    let k = spec.kernel;
    let n_cols = out_h * out_w;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                for oy in 0..out_h {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        grad_input[(ch * h + iy as usize) * w + ix as usize] +=
                            cols[row * n_cols + oy * out_w + ox];
                    }
                }
            }
        }
    }
}

fn check_input(input: &Tensor, spec: &Conv2dSpec) -> Result<(usize, usize, usize, usize)> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.shape().rank() });
    }
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != spec.in_channels {
        return Err(TensorError::InvalidConvolution(format!(
            "input has {c} channels but the spec expects {}",
            spec.in_channels
        )));
    }
    Ok((n, c, h, w))
}

/// Forward 2-D convolution.
///
/// * `input`: `[N, C_in, H, W]`
/// * `weight`: `[C_out, C_in, k, k]`
/// * `bias`: `[C_out]`
///
/// Returns `[N, C_out, H_out, W_out]`.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let (n, c, h, w) = check_input(input, spec)?;
    if weight.len() != spec.weight_len() {
        return Err(TensorError::ShapeDataMismatch {
            expected: spec.weight_len(),
            actual: weight.len(),
        });
    }
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeDataMismatch {
            expected: spec.out_channels,
            actual: bias.len(),
        });
    }
    let (out_h, out_w) = spec.output_size(h, w)?;
    let col_rows = c * spec.kernel * spec.kernel;
    let n_cols = out_h * out_w;
    let mut out = vec![0.0f32; n * spec.out_channels * n_cols];

    let in_stride = c * h * w;
    let out_stride = spec.out_channels * n_cols;
    let input_data = input.as_slice();
    let weight_data = weight.as_slice();
    let bias_data = bias.as_slice();

    // One fully independent unit of work per batch sample: lower the sample,
    // run the per-output-channel GEMM, add the bias. The backend is resolved
    // once here and captured, so the per-sample pool tasks use the caller's
    // backend.
    let be = fuse_backend::active();
    let forward_sample = |s: usize, cols: &mut [f32], out_sample: &mut [f32]| {
        im2col(be, &input_data[s * in_stride..(s + 1) * in_stride], c, h, w, spec, cols);
        // out[s] = weight[(C_out) x (C_in*k*k)] * cols[(C_in*k*k) x (n_cols)]
        linalg::gemm(weight_data, cols, out_sample, spec.out_channels, col_rows, n_cols);
        for (oc, out_channel) in out_sample.chunks_exact_mut(n_cols).enumerate() {
            be.add_scalar_assign(out_channel, bias_data[oc]);
        }
    };

    if n > 1 && par::parallel_beneficial(n * spec.out_channels * col_rows * n_cols) {
        par::par_chunks_mut(&mut out, out_stride, |s, out_sample| {
            let mut cols = vec![0.0f32; col_rows * n_cols];
            forward_sample(s, &mut cols, out_sample);
        });
    } else {
        let mut cols = vec![0.0f32; col_rows * n_cols];
        for (s, out_sample) in out.chunks_exact_mut(out_stride).enumerate() {
            forward_sample(s, &mut cols, out_sample);
        }
    }
    Tensor::from_vec(out, &[n, spec.out_channels, out_h, out_w])
}

/// Forward 2-D convolution into caller-provided buffers (the arena-backed
/// entry point used by compiled `fuse-graph` execution plans).
///
/// Semantically identical to [`conv2d_forward`] — the same im2col lowering,
/// the same per-sample GEMM, the same backend bias broadcast, the same
/// parallel gate — but every intermediate lives in slices owned by the
/// caller, so steady-state execution performs no heap allocation. An optional
/// fused ReLU applies `x.max(0.0)` element-wise after the bias, which is
/// bit-identical to running a separate ReLU layer on the result.
///
/// * `input`: `[N, C_in, H, W]` (flattened, `n * c * h * w` elements)
/// * `cols`: scratch of at least `n * (C_in*k*k) * (H_out*W_out)` elements
/// * `out`: at least `n * C_out * H_out * W_out` elements
///
/// # Errors
///
/// Returns an error when the geometry is degenerate or any buffer is shorter
/// than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_into(
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    cols: &mut [f32],
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    conv2d_forward_into_on(
        fuse_backend::active(),
        input,
        n,
        h,
        w,
        weight,
        bias,
        spec,
        cols,
        out,
        relu,
    )
}

/// [`conv2d_forward_into`] under **relaxed** dispatch: bit-identical to the
/// exact entry point for `scalar`/`simd`/`auto`, fused FMA kernels under
/// the opt-in `FUSE_BACKEND=simd-fma` on a capable host. Only the
/// compiled-plan serve path calls this.
///
/// # Errors
///
/// Same conditions as [`conv2d_forward_into`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_into_relaxed(
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    cols: &mut [f32],
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    let be = fuse_backend::active_for(fuse_backend::ContractMode::Relaxed);
    conv2d_forward_into_on(be, input, n, h, w, weight, bias, spec, cols, out, relu)
}

#[allow(clippy::too_many_arguments)]
fn conv2d_forward_into_on(
    be: &'static dyn fuse_backend::KernelBackend,
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    cols: &mut [f32],
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    let c = spec.in_channels;
    let (out_h, out_w) = spec.output_size(h, w)?;
    let col_rows = c * spec.kernel * spec.kernel;
    let n_cols = out_h * out_w;
    check_buffer(input.len(), n * c * h * w)?;
    check_buffer(weight.len(), spec.weight_len())?;
    check_buffer(bias.len(), spec.out_channels)?;
    check_buffer(cols.len(), n * col_rows * n_cols)?;
    check_buffer(out.len(), n * spec.out_channels * n_cols)?;

    let in_stride = c * h * w;
    let col_stride = col_rows * n_cols;
    let out_stride = spec.out_channels * n_cols;
    let cols = &mut cols[..n * col_stride];
    let out = &mut out[..n * out_stride];

    // Same per-sample unit of work as `conv2d_forward`, with the scratch
    // column matrix carved out of the caller's slab instead of a fresh
    // allocation. `im2col` fully overwrites its scratch, so slab reuse
    // cannot change any bit. The backend was resolved once by the public
    // wrapper (exact or relaxed) and governs the whole dispatch.
    let forward_sample = |s: usize, cols_s: &mut [f32], out_s: &mut [f32]| {
        im2col(be, &input[s * in_stride..(s + 1) * in_stride], c, h, w, spec, cols_s);
        linalg::gemm_on(be, weight, cols_s, out_s, spec.out_channels, col_rows, n_cols);
        for (oc, out_channel) in out_s.chunks_exact_mut(n_cols).enumerate() {
            be.add_scalar_assign(out_channel, bias[oc]);
        }
        if relu {
            for v in out_s.iter_mut() {
                *v = v.max(0.0);
            }
        }
    };

    if n > 1 && par::parallel_beneficial(n * spec.out_channels * col_rows * n_cols) {
        // `par_chunks_mut` hands out one slice; per-sample scratch needs a
        // second, so zip the two slabs under a fork-join scope instead. The
        // pool may allocate task cells here — the zero-alloc guarantee holds
        // for serial steady state (`FUSE_THREADS=1`), which the allocation
        // gate pins.
        let forward_sample = &forward_sample;
        par::scope(|scope| {
            for (s, (cols_s, out_s)) in
                cols.chunks_exact_mut(col_stride).zip(out.chunks_exact_mut(out_stride)).enumerate()
            {
                scope.spawn(move || forward_sample(s, cols_s, out_s));
            }
        });
    } else {
        for (s, (cols_s, out_s)) in
            cols.chunks_exact_mut(col_stride).zip(out.chunks_exact_mut(out_stride)).enumerate()
        {
            forward_sample(s, cols_s, out_s);
        }
    }
    Ok(())
}

/// Forward 1×1 / stride-1 / unpadded convolution as a direct GEMM into
/// caller-provided buffers.
///
/// For this geometry the im2col matrix of a sample *is* the sample
/// (`cols[ch * n_cols + i] == input[ch * n_cols + i]`), so the lowering is
/// pure data movement and can be elided: `out[s] = weight * input[s]` (a
/// `[C_out x C_in] x [C_in x H*W]` GEMM) runs on the input directly,
/// bit-identically to [`conv2d_forward`] / [`conv2d_forward_into`] because
/// the GEMM sees the exact same operand values and dimensions.
///
/// # Errors
///
/// Returns an error when `spec` is not `kernel == 1, stride == 1, padding ==
/// 0` or any buffer is shorter than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn conv1x1_forward_into(
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    conv1x1_forward_into_on(fuse_backend::active(), input, n, h, w, weight, bias, spec, out, relu)
}

/// [`conv1x1_forward_into`] under **relaxed** dispatch (see
/// [`conv2d_forward_into_relaxed`] for the contract).
///
/// # Errors
///
/// Same conditions as [`conv1x1_forward_into`].
#[allow(clippy::too_many_arguments)]
pub fn conv1x1_forward_into_relaxed(
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    let be = fuse_backend::active_for(fuse_backend::ContractMode::Relaxed);
    conv1x1_forward_into_on(be, input, n, h, w, weight, bias, spec, out, relu)
}

#[allow(clippy::too_many_arguments)]
fn conv1x1_forward_into_on(
    be: &'static dyn fuse_backend::KernelBackend,
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
    out: &mut [f32],
    relu: bool,
) -> Result<()> {
    if spec.kernel != 1 || spec.stride != 1 || spec.padding != 0 {
        return Err(TensorError::InvalidConvolution(format!(
            "direct-gemm path requires a 1x1/stride-1/unpadded conv, got k={} s={} p={}",
            spec.kernel, spec.stride, spec.padding
        )));
    }
    let c = spec.in_channels;
    let n_cols = h * w;
    check_buffer(input.len(), n * c * n_cols)?;
    check_buffer(weight.len(), spec.weight_len())?;
    check_buffer(bias.len(), spec.out_channels)?;
    check_buffer(out.len(), n * spec.out_channels * n_cols)?;

    let in_stride = c * n_cols;
    let out_stride = spec.out_channels * n_cols;
    let out = &mut out[..n * out_stride];

    let forward_sample = |s: usize, out_s: &mut [f32]| {
        linalg::gemm_on(
            be,
            weight,
            &input[s * in_stride..(s + 1) * in_stride],
            out_s,
            spec.out_channels,
            c,
            n_cols,
        );
        for (oc, out_channel) in out_s.chunks_exact_mut(n_cols).enumerate() {
            be.add_scalar_assign(out_channel, bias[oc]);
        }
        if relu {
            for v in out_s.iter_mut() {
                *v = v.max(0.0);
            }
        }
    };

    // Same gate expression as the general conv (col_rows == C_in when k=1).
    if n > 1 && par::parallel_beneficial(n * spec.out_channels * c * n_cols) {
        par::par_chunks_mut(out, out_stride, forward_sample);
    } else {
        for (s, out_s) in out.chunks_exact_mut(out_stride).enumerate() {
            forward_sample(s, out_s);
        }
    }
    Ok(())
}

fn check_buffer(actual: usize, expected: usize) -> Result<()> {
    if actual < expected {
        return Err(TensorError::ShapeDataMismatch { expected, actual });
    }
    Ok(())
}

/// Gradient of the convolution output with respect to its input.
///
/// * `grad_output`: `[N, C_out, H_out, W_out]`
///
/// Returns `[N, C_in, H, W]` where `(H, W)` is taken from `input_dims`.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_backward_input(
    grad_output: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input_dims.len() });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (out_h, out_w) = spec.output_size(h, w)?;
    let n_cols = out_h * out_w;
    let col_rows = c * spec.kernel * spec.kernel;
    if grad_output.len() != n * spec.out_channels * n_cols {
        return Err(TensorError::ShapeDataMismatch {
            expected: n * spec.out_channels * n_cols,
            actual: grad_output.len(),
        });
    }

    let mut grad_input = vec![0.0f32; n * c * h * w];
    let go_stride = spec.out_channels * n_cols;
    let gi_stride = c * h * w;
    let go_data = grad_output.as_slice();
    let weight_data = weight.as_slice();

    // Per-sample adjoint: un-GEMM into column space, then scatter back.
    let backward_sample = |s: usize, grad_cols: &mut [f32], gi_sample: &mut [f32]| {
        // grad_cols = weightᵀ [col_rows x C_out] * grad_out [C_out x n_cols]
        linalg::gemm_at_b(
            weight_data,
            &go_data[s * go_stride..(s + 1) * go_stride],
            grad_cols,
            spec.out_channels,
            col_rows,
            n_cols,
        );
        col2im(grad_cols, c, h, w, spec, gi_sample);
    };

    if n > 1 && par::parallel_beneficial(n * spec.out_channels * col_rows * n_cols) {
        par::par_chunks_mut(&mut grad_input, gi_stride, |s, gi_sample| {
            let mut grad_cols = vec![0.0f32; col_rows * n_cols];
            backward_sample(s, &mut grad_cols, gi_sample);
        });
    } else {
        let mut grad_cols = vec![0.0f32; col_rows * n_cols];
        for (s, gi_sample) in grad_input.chunks_exact_mut(gi_stride).enumerate() {
            backward_sample(s, &mut grad_cols, gi_sample);
        }
    }
    Tensor::from_vec(grad_input, &[n, c, h, w])
}

/// Gradients of the convolution output with respect to the weights and bias.
///
/// Returns `(grad_weight [C_out, C_in, k, k], grad_bias [C_out])`, summed over
/// the batch.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_output: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_input(input, spec)?;
    let (out_h, out_w) = spec.output_size(h, w)?;
    let n_cols = out_h * out_w;
    let col_rows = c * spec.kernel * spec.kernel;
    if grad_output.len() != n * spec.out_channels * n_cols {
        return Err(TensorError::ShapeDataMismatch {
            expected: n * spec.out_channels * n_cols,
            actual: grad_output.len(),
        });
    }

    let mut grad_weight = vec![0.0f32; spec.weight_len()];
    let mut grad_bias = vec![0.0f32; spec.out_channels];
    let in_stride = c * h * w;
    let go_stride = spec.out_channels * n_cols;
    let input_data = input.as_slice();
    let go_data = grad_output.as_slice();

    // The weight/bias gradients are reductions over the batch. Each sample
    // produces an independent partial (`cols` is fully overwritten per call,
    // so the buffer can be shared or private without changing any bit). The
    // per-channel bias sums are in-order reductions, which every backend
    // computes in the scalar association (the reproducibility contract).
    let be = fuse_backend::active();
    let weight_partial = |s: usize, cols: &mut [f32]| {
        im2col(be, &input_data[s * in_stride..(s + 1) * in_stride], c, h, w, spec, cols);
        // grad_w += grad_out [C_out x n_cols] * colsᵀ [n_cols x col_rows]
        let go = &go_data[s * go_stride..(s + 1) * go_stride];
        let mut gw = vec![0.0f32; spec.out_channels * col_rows];
        linalg::gemm_a_bt(go, cols, &mut gw, spec.out_channels, n_cols, col_rows);
        let gb: Vec<f32> =
            (0..spec.out_channels).map(|oc| be.sum(&go[oc * n_cols..(oc + 1) * n_cols])).collect();
        (gw, gb)
    };

    // Parallel partials are materialised per sample and merged in sample
    // order: band-local accumulation would tie the floating-point association
    // to the thread count and break bit-identity. The transient cost is
    // O(batch × weight_len), small for every workload in this workspace.
    let partials: Vec<(Vec<f32>, Vec<f32>)> =
        if n > 1 && par::parallel_beneficial(n * spec.out_channels * col_rows * n_cols) {
            par::par_map_index(n, |s| {
                let mut cols = vec![0.0f32; col_rows * n_cols];
                weight_partial(s, &mut cols)
            })
        } else {
            let mut cols = vec![0.0f32; col_rows * n_cols];
            (0..n).map(|s| weight_partial(s, &mut cols)).collect()
        };
    for (gw, gb) in &partials {
        linalg::axpy(1.0, gw, &mut grad_weight);
        linalg::add_assign(&mut grad_bias, gb);
    }
    Ok((
        Tensor::from_vec(
            grad_weight,
            &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
        )?,
        Tensor::from_vec(grad_bias, &[spec.out_channels])?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-im2col) convolution used as a reference implementation.
    fn conv2d_reference(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let dims = input.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (out_h, out_w) = spec.output_size(h, w).unwrap();
        let mut out = Tensor::zeros(&[n, spec.out_channels, out_h, out_w]);
        for s in 0..n {
            for oc in 0..spec.out_channels {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let mut acc = bias.as_slice()[oc];
                        for ic in 0..c {
                            for ky in 0..spec.kernel {
                                for kx in 0..spec.kernel {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xv = input.at(&[s, ic, iy as usize, ix as usize]).unwrap();
                                    let wv = weight.at(&[oc, ic, ky, kx]).unwrap();
                                    acc += xv * wv;
                                }
                            }
                        }
                        out.set(&[s, oc, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn small_case() -> (Tensor, Tensor, Tensor, Conv2dSpec) {
        let spec = Conv2dSpec::same(2, 3, 3);
        let input = Tensor::randn(&[2, 2, 5, 5], 1.0, 11);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.5, 12);
        let bias = Tensor::randn(&[3], 0.1, 13);
        (input, weight, bias, spec)
    }

    #[test]
    fn forward_matches_reference_convolution() {
        let (input, weight, bias, spec) = small_case();
        let fast = conv2d_forward(&input, &weight, &bias, &spec).unwrap();
        let slow = conv2d_reference(&input, &weight, &bias, &spec);
        assert_eq!(fast.dims(), slow.dims());
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn output_size_same_padding_preserves_spatial_dims() {
        let spec = Conv2dSpec::same(5, 16, 3);
        assert_eq!(spec.output_size(8, 8).unwrap(), (8, 8));
        assert_eq!(spec.padding, 1);
    }

    #[test]
    fn output_size_rejects_degenerate_geometry() {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 5, stride: 1, padding: 0 };
        assert!(spec.output_size(3, 3).is_err());
        let bad = Conv2dSpec { stride: 0, ..spec };
        assert!(bad.output_size(8, 8).is_err());
    }

    #[test]
    fn forward_rejects_wrong_channel_count() {
        let spec = Conv2dSpec::same(3, 4, 3);
        let input = Tensor::zeros(&[1, 2, 8, 8]);
        let weight = Tensor::zeros(&[4, 3, 3, 3]);
        let bias = Tensor::zeros(&[4]);
        assert!(conv2d_forward(&input, &weight, &bias, &spec).is_err());
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn backward_input_matches_finite_differences() {
        let spec = Conv2dSpec::same(1, 2, 3);
        let input = Tensor::randn(&[1, 1, 4, 4], 1.0, 21);
        let weight = Tensor::randn(&[2, 1, 3, 3], 0.5, 22);
        let bias = Tensor::zeros(&[2]);

        // Loss = sum(conv(x)); dLoss/dOut = ones.
        let out = conv2d_forward(&input, &weight, &bias, &spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grad_in = conv2d_backward_input(&grad_out, &weight, input.dims(), &spec).unwrap();

        let eps = 1e-3;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus = conv2d_forward(&plus, &weight, &bias, &spec).unwrap().sum();
            let f_minus = conv2d_forward(&minus, &weight, &bias, &spec).unwrap().sum();
            let fd = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (fd - grad_in.as_slice()[i]).abs() < 1e-2,
                "input grad mismatch at {i}: fd={fd} analytic={}",
                grad_in.as_slice()[i]
            );
        }
    }

    /// Finite-difference check of the weight and bias gradients.
    #[test]
    fn backward_weight_matches_finite_differences() {
        let spec = Conv2dSpec::same(2, 2, 3);
        let input = Tensor::randn(&[2, 2, 4, 4], 1.0, 31);
        let weight = Tensor::randn(&[2, 2, 3, 3], 0.5, 32);
        let bias = Tensor::randn(&[2], 0.1, 33);

        let out = conv2d_forward(&input, &weight, &bias, &spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let (grad_w, grad_b) = conv2d_backward_weight(&input, &grad_out, &spec).unwrap();

        let eps = 1e-3;
        for i in (0..weight.len()).step_by(5) {
            let mut plus = weight.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus = conv2d_forward(&input, &plus, &bias, &spec).unwrap().sum();
            let f_minus = conv2d_forward(&input, &minus, &bias, &spec).unwrap().sum();
            let fd = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (fd - grad_w.as_slice()[i]).abs() < 2e-2,
                "weight grad mismatch at {i}: fd={fd} analytic={}",
                grad_w.as_slice()[i]
            );
        }
        for i in 0..bias.len() {
            let mut plus = bias.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = bias.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus = conv2d_forward(&input, &weight, &plus, &spec).unwrap().sum();
            let f_minus = conv2d_forward(&input, &weight, &minus, &spec).unwrap().sum();
            let fd = (f_plus - f_minus) / (2.0 * eps);
            assert!((fd - grad_b.as_slice()[i]).abs() < 2e-2);
        }
    }

    #[test]
    fn weight_len_matches_tensor_shape() {
        let spec = Conv2dSpec::same(5, 16, 3);
        assert_eq!(spec.weight_len(), 16 * 5 * 3 * 3);
    }
}
