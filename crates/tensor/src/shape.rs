//! Shape arithmetic for dense row-major tensors.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::Result;

/// Dimensions of a dense row-major tensor.
///
/// A `Shape` is a thin wrapper around a `Vec<usize>` that provides the index
/// arithmetic (strides, flat offsets) used by [`crate::Tensor`].
///
/// ```
/// use fuse_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions, 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index: axis, bound: self.dims.len() })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error when the index rank differs from the shape rank or any
    /// component is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut flat = 0usize;
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `flat >= len()`.
    pub fn unravel(&self, flat: usize) -> Result<Vec<usize>> {
        if flat >= self.len().max(1) {
            return Err(TensorError::IndexOutOfBounds { index: flat, bound: self.len() });
        }
        let strides = self.strides();
        let mut rem = flat;
        let mut idx = Vec::with_capacity(self.dims.len());
        for &s in &strides {
            idx.push(rem / s);
            rem %= s;
        }
        Ok(idx)
    }

    /// Returns `true` when both shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(s.flat_index(&[2, 0]), Err(TensorError::IndexOutOfBounds { .. })));
        assert!(matches!(s.flat_index(&[0]), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn unravel_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.unravel(4).is_err());
        assert!(s.unravel(3).is_ok());
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(1).unwrap(), 9);
        assert!(s.dim(2).is_err());
    }

    #[test]
    fn zero_sized_shape_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_shows_dims() {
        let s = Shape::new(&[2, 5]);
        assert_eq!(s.to_string(), "[2, 5]");
    }
}
