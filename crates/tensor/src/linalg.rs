//! Low-level dense linear-algebra kernels.
//!
//! These kernels operate on plain `&[f32]` slices so they can be reused by the
//! tensor type, the im2col convolution path and the radar signal chain without
//! additional allocation.
//!
//! ## Parallel execution
//!
//! Every matrix product dispatches row-parallel bands to the `fuse-parallel`
//! pool when the operation is large enough ([`fuse_parallel::parallel_beneficial`])
//! and runs serially otherwise. Both paths execute the *same* per-output-row
//! kernel in the same floating-point order, so results are bit-identical for
//! every `FUSE_THREADS` value — the invariant the workspace's seed-exact
//! tests and the CI thread matrix rely on.

use fuse_parallel as par;

/// Per-row GEMM kernel: `out_row (+)= a_row · b` where `b` is `[k x n]` and
/// `n == out_row.len()`. The `p`-ascending accumulation order is the single
/// source of truth for both the serial and the parallel paths.
#[inline]
fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool) {
    let n = out_row.len();
    if !accumulate {
        out_row.fill(0.0);
    }
    for (p, &a_ip) in a_row.iter().enumerate() {
        if a_ip == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
            *o += a_ip * b_pj;
        }
    }
}

fn gemm_dispatch(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    let (a, b) = (&a[..m * k], &b[..k * n]);
    if m > 1 && par::parallel_beneficial(m * k * n) {
        par::par_chunks_mut(out, n, |i, out_row| {
            gemm_row(&a[i * k..(i + 1) * k], b, out_row, acc);
        });
    } else {
        for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            gemm_row(a_row, b, out_row, acc);
        }
    }
}

/// General matrix multiply: `out[m x n] = a[m x k] * b[k x n]`.
///
/// `out` must already have length `m * n`; it is overwritten, not accumulated
/// into. Each output row keeps the innermost loop contiguous over both `b`
/// and `out`; rows are distributed across the `fuse-parallel` pool for large
/// operands.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_dispatch(a, b, out, m, k, n, false);
}

/// Accumulating matrix multiply: `out += a * b` with the same layout rules as
/// [`gemm`].
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_dispatch(a, b, out, m, k, n, true);
}

/// `k`-outer kernel of [`gemm_at_b`] over a contiguous band of output rows
/// starting at absolute row `row0`. The row slices of both operands are
/// hoisted into chunk iterators instead of being recomputed per `p`
/// iteration, and each output row accumulates in `p`-ascending order — the
/// same order for any banding, so parallel output is bit-identical to serial.
fn gemm_at_b_band(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, m: usize, n: usize) {
    out_band.fill(0.0);
    let a_rows = a.chunks_exact(m);
    let b_rows = b.chunks_exact(n);
    debug_assert_eq!(a_rows.len(), b_rows.len(), "lhs and rhs must agree on the shared k extent");
    debug_assert_eq!(out_band.len() % n, 0, "output band must hold whole rows of length n");
    for (a_row, b_row) in a_rows.zip(b_rows) {
        for (i, out_row) in out_band.chunks_exact_mut(n).enumerate() {
            let a_pi = a_row[row0 + i];
            if a_pi == 0.0 {
                continue;
            }
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Matrix multiply with the left operand transposed: `out[m x n] = aᵀ * b`
/// where `a` is stored as `[k x m]`.
///
/// Used by the Linear/Conv backward passes, which need `Wᵀ·grad` and
/// `xᵀ·grad` products without materialising explicit transposes.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    assert!(a.len() >= k * m, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let (a, b) = (&a[..k * m], &b[..k * n]);
    if m > 1 && par::parallel_beneficial(k * m * n) {
        let band_rows = m.div_ceil(par::available_threads());
        par::par_chunks_mut(out, band_rows * n, |band, out_band| {
            gemm_at_b_band(a, b, out_band, band * band_rows, m, n);
        });
    } else {
        gemm_at_b_band(a, b, out, 0, m, n);
    }
}

/// Per-row kernel of [`gemm_a_bt`]: `out_row[j] = a_row · b[j]` with `b`
/// stored `[n x k]`.
#[inline]
fn gemm_a_bt_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
        let mut acc = 0.0f32;
        for (x, y) in a_row.iter().zip(b_row) {
            acc += x * y;
        }
        *o = acc;
    }
}

/// Matrix multiply with the right operand transposed: `out[m x n] = a * bᵀ`
/// where `b` is stored as `[n x k]`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= n * k, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let (a, b) = (&a[..m * k], &b[..n * k]);
    if m > 1 && par::parallel_beneficial(m * k * n) {
        par::par_chunks_mut(out, n, |i, out_row| {
            gemm_a_bt_row(&a[i * k..(i + 1) * k], b, out_row, k);
        });
    } else {
        for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            gemm_a_bt_row(a_row, b, out_row, k);
        }
    }
}

/// Outer product `out[m x n] = a ⊗ b`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn outer(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(out.len() >= a.len() * b.len(), "output buffer too small");
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i * b.len() + j] = ai * bj;
        }
    }
}

/// `y += alpha * x` over raw slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_matches_naive_triple_loop() {
        let m = 4;
        let k = 5;
        let n = 3;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * -0.21 + 1.0).collect();
        let mut out = vec![0.0; m * n];
        gemm(&a, &b, &mut out, m, k, n);
        let expected = naive_gemm(&a, &b, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_acc_accumulates_on_top() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut out = vec![10.0; 4];
        gemm_acc(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let k = 3;
        let m = 2;
        let n = 4;
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 + 1.0).collect(); // [k x m]
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect(); // [k x n]
                                                                          // explicit transpose of a -> [m x k]
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let expected = naive_gemm(&at, &b, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_at_b(&a, &b, &mut out, k, m, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        let m = 3;
        let k = 2;
        let n = 4;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 - 1.5).collect(); // [m x k]
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32) * 0.25 + 0.5).collect(); // [n x k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let expected = naive_gemm(&a, &bt, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_a_bt(&a, &b, &mut out, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        let (m, k, n) = (37, 29, 23);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 1000) as f32 * 1e-3 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104_729) % 1000) as f32 * 1e-3 - 0.5).collect();
        let run = |threads: usize| {
            fuse_parallel::with_threads(threads, || {
                fuse_parallel::with_min_parallel_work(0, || {
                    let mut out = vec![0.0f32; m * n];
                    gemm(&a, &b, &mut out, m, k, n);
                    out
                })
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn outer_product() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0];
        let mut out = vec![0.0; 6];
        outer(&a, &b, &mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn axpy_panics_on_length_mismatch() {
        let x = [1.0, 2.0];
        let mut y = [0.0];
        axpy(1.0, &x, &mut y);
    }
}
