//! Low-level dense linear-algebra kernels.
//!
//! These kernels operate on plain `&[f32]` slices so they can be reused by the
//! tensor type, the im2col convolution path and the radar signal chain without
//! additional allocation.

/// General matrix multiply: `out[m x n] = a[m x k] * b[k x n]`.
///
/// `out` must already have length `m * n`; it is overwritten, not accumulated
/// into. The loop order (i, p, j) keeps the innermost loop contiguous over
/// both `b` and `out`, which is the main thing that matters for the small-to-
/// medium matrices used by the FUSE models.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    out[..m * n].iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Accumulating matrix multiply: `out += a * b` with the same layout rules as
/// [`gemm`].
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Matrix multiply with the left operand transposed: `out[m x n] = aᵀ * b`
/// where `a` is stored as `[k x m]`.
///
/// Used by the Linear/Conv backward passes, which need `Wᵀ·grad` and
/// `xᵀ·grad` products without materialising explicit transposes.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    assert!(a.len() >= k * m, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    out[..m * n].iter_mut().for_each(|x| *x = 0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Matrix multiply with the right operand transposed: `out[m x n] = a * bᵀ`
/// where `b` is stored as `[n x k]`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= n * k, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Outer product `out[m x n] = a ⊗ b`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn outer(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(out.len() >= a.len() * b.len(), "output buffer too small");
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i * b.len() + j] = ai * bj;
        }
    }
}

/// `y += alpha * x` over raw slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_matches_naive_triple_loop() {
        let m = 4;
        let k = 5;
        let n = 3;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * -0.21 + 1.0).collect();
        let mut out = vec![0.0; m * n];
        gemm(&a, &b, &mut out, m, k, n);
        let expected = naive_gemm(&a, &b, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_acc_accumulates_on_top() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut out = vec![10.0; 4];
        gemm_acc(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let k = 3;
        let m = 2;
        let n = 4;
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 + 1.0).collect(); // [k x m]
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect(); // [k x n]
                                                                          // explicit transpose of a -> [m x k]
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let expected = naive_gemm(&at, &b, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_at_b(&a, &b, &mut out, k, m, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        let m = 3;
        let k = 2;
        let n = 4;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 - 1.5).collect(); // [m x k]
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32) * 0.25 + 0.5).collect(); // [n x k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let expected = naive_gemm(&a, &bt, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_a_bt(&a, &b, &mut out, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn outer_product() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0];
        let mut out = vec![0.0; 6];
        outer(&a, &b, &mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn axpy_panics_on_length_mismatch() {
        let x = [1.0, 2.0];
        let mut y = [0.0];
        axpy(1.0, &x, &mut y);
    }
}
