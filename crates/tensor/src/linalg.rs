//! Low-level dense linear-algebra kernels.
//!
//! These kernels operate on plain `&[f32]` slices so they can be reused by the
//! tensor type, the im2col convolution path and the radar signal chain without
//! additional allocation.
//!
//! ## Execution backends
//!
//! Every matrix product dispatches row-parallel bands to the `fuse-parallel`
//! pool when the operation is large enough ([`fuse_parallel::parallel_beneficial`])
//! and runs serially otherwise; *within* each row the arithmetic runs on the
//! active [`fuse_backend::KernelBackend`] (scalar reference or SIMD, selected
//! by `FUSE_BACKEND` / [`fuse_backend::with_backend`]). The backend is
//! fetched once per dispatch on the calling thread and handed into the pool
//! tasks, so thread-local test overrides compose with parallel execution.
//! All backends honour the bit-reproducibility contract
//! (`REPRODUCIBILITY.md`), so results are bit-identical for every
//! `FUSE_THREADS` × `FUSE_BACKEND` combination — the invariant the
//! workspace's seed-exact tests and the CI backend matrix rely on.
//!
//! ## Relaxed entry points
//!
//! The `*_relaxed` variants ([`affine_a_bt_relaxed`]) resolve the backend
//! through [`fuse_backend::ContractMode::Relaxed`] instead of exact
//! dispatch. Under `scalar`/`simd`/`auto` they are bit-identical to their
//! exact twins (relaxed dispatch only differs for the opt-in `simd-fma`
//! choice); under `FUSE_BACKEND=simd-fma` on an FMA host they run fused
//! kernels and are verified by tolerance. Only the compiled-plan serve
//! path calls them.

use fuse_backend::ContractMode;
use fuse_parallel as par;

pub use fuse_backend::KernelBackend;

/// The kernel backend active for the current thread, for callers that want
/// to resolve it once and reuse it across a hot loop (e.g. the max-pooling
/// window scan) instead of paying a per-call lookup through the facade
/// functions below.
pub fn active_backend() -> &'static dyn KernelBackend {
    fuse_backend::active()
}

fn gemm_dispatch(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    gemm_dispatch_on(fuse_backend::active(), a, b, out, m, k, n, acc);
}

#[allow(clippy::too_many_arguments)]
fn gemm_dispatch_on(
    be: &'static dyn KernelBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    let (a, b) = (&a[..m * k], &b[..k * n]);
    if m > 1 && par::parallel_beneficial(m * k * n) {
        // Contiguous row bands (one per thread) instead of per-row chunks:
        // the block-level backend kernel can then reuse `b` loads across
        // rows. Per-element accumulation order is banding-independent, so
        // any thread count stays bit-identical.
        let band_rows = m.div_ceil(par::available_threads());
        par::par_chunks_mut(out, band_rows * n, |band, out_band| {
            let start = band * band_rows;
            let rows = out_band.len() / n;
            be.gemm_rows(&a[start * k..(start + rows) * k], b, out_band, k, n, acc);
        });
    } else {
        be.gemm_rows(a, b, out, k, n, acc);
    }
}

/// General matrix multiply: `out[m x n] = a[m x k] * b[k x n]`.
///
/// `out` must already have length `m * n`; it is overwritten, not accumulated
/// into. Each output row keeps the innermost loop contiguous over both `b`
/// and `out`; rows are distributed across the `fuse-parallel` pool for large
/// operands.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_dispatch(a, b, out, m, k, n, false);
}

/// Accumulating matrix multiply: `out += a * b` with the same layout rules as
/// [`gemm`].
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_dispatch(a, b, out, m, k, n, true);
}

/// [`gemm`] on an explicit backend — the hook the conv forward path uses to
/// run one resolved backend (exact or relaxed) across its whole dispatch.
pub(crate) fn gemm_on(
    be: &'static dyn KernelBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_dispatch_on(be, a, b, out, m, k, n, false);
}

/// Matrix multiply with the left operand transposed: `out[m x n] = aᵀ * b`
/// where `a` is stored as `[k x m]`.
///
/// Used by the Linear/Conv backward passes, which need `Wᵀ·grad` and
/// `xᵀ·grad` products without materialising explicit transposes.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    assert!(a.len() >= k * m, "lhs buffer too small");
    assert!(b.len() >= k * n, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let (a, b) = (&a[..k * m], &b[..k * n]);
    let be = fuse_backend::active();
    if m > 1 && par::parallel_beneficial(k * m * n) {
        let band_rows = m.div_ceil(par::available_threads());
        par::par_chunks_mut(out, band_rows * n, |band, out_band| {
            be.gemm_at_b_band(a, b, out_band, band * band_rows, m, n);
        });
    } else {
        be.gemm_at_b_band(a, b, out, 0, m, n);
    }
}

/// Matrix multiply with the right operand transposed: `out[m x n] = a * bᵀ`
/// where `b` is stored as `[n x k]`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn gemm_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_a_bt_on(fuse_backend::active(), a, b, out, m, k, n);
}

fn gemm_a_bt_on(
    be: &'static dyn KernelBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(a.len() >= m * k, "lhs buffer too small");
    assert!(b.len() >= n * k, "rhs buffer too small");
    assert!(out.len() >= m * n, "output buffer too small");
    let out = &mut out[..m * n];
    if n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let (a, b) = (&a[..m * k], &b[..n * k]);
    if m > 1 && par::parallel_beneficial(m * k * n) {
        par::par_chunks_mut(out, n, |i, out_row| {
            be.gemm_a_bt_row(&a[i * k..(i + 1) * k], b, out_row, k);
        });
    } else {
        for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            be.gemm_a_bt_row(a_row, b, out_row, k);
        }
    }
}

/// Fused affine transform `out[m x n] = a * bᵀ + bias` with an optional
/// fused ReLU, where `b` is stored `[n x k]` (a fully-connected layer's
/// weight layout) and `bias` has `n` elements.
///
/// This is the arena-backed entry point compiled `fuse-graph` plans use for
/// Linear layers: the GEMM is exactly [`gemm_a_bt`], the bias add is the same
/// per-element scalar `+` a `Linear` layer applies, and the ReLU is the same
/// per-element `x.max(0.0)` as a standalone ReLU layer — so fusing the three
/// cannot change any bit.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn affine_a_bt(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
) {
    affine_a_bt_on(fuse_backend::active(), a, b, bias, out, m, k, n, relu);
}

/// [`affine_a_bt`] under **relaxed** dispatch: identical to the exact entry
/// point for `scalar`/`simd`/`auto`, the fused FMA kernels under the opt-in
/// `FUSE_BACKEND=simd-fma` on a capable host. The compiled-plan Linear step
/// is the only caller — see `REPRODUCIBILITY.md` § relaxed contract.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn affine_a_bt_relaxed(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
) {
    affine_a_bt_on(fuse_backend::active_for(ContractMode::Relaxed), a, b, bias, out, m, k, n, relu);
}

#[allow(clippy::too_many_arguments)]
fn affine_a_bt_on(
    be: &'static dyn KernelBackend,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
) {
    assert!(bias.len() >= n, "bias buffer too small");
    gemm_a_bt_on(be, a, b, out, m, k, n);
    for row in out[..m * n].chunks_exact_mut(n) {
        for (o, &bv) in row.iter_mut().zip(&bias[..n]) {
            *o += bv;
        }
        if relu {
            for o in row.iter_mut() {
                *o = o.max(0.0);
            }
        }
    }
}

/// Outer product `out[m x n] = a ⊗ b`.
///
/// # Panics
///
/// Panics if any slice is shorter than the dimensions imply.
pub fn outer(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(out.len() >= a.len() * b.len(), "output buffer too small");
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i * b.len() + j] = ai * bj;
        }
    }
}

/// `y += alpha * x` over raw slices, on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    fuse_backend::active().axpy(alpha, x, y);
}

/// `y += x` over raw slices, on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "add_assign operands must have equal length");
    fuse_backend::active().add_assign(y, x);
}

/// `data *= s` in place, on the active backend.
pub fn scale_assign(data: &mut [f32], s: f32) {
    fuse_backend::active().scale_assign(data, s);
}

/// `data += s` in place (bias broadcast), on the active backend.
pub fn add_scalar_assign(data: &mut [f32], s: f32) {
    fuse_backend::active().add_scalar_assign(data, s);
}

/// In-order sum of a slice. Reductions are order-sensitive, so every backend
/// uses the scalar left-to-right association (the reproducibility contract).
pub fn sum(x: &[f32]) -> f32 {
    fuse_backend::active().sum(x)
}

/// Dot product of two equal-length slices (in-order reduction, see [`sum`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    fuse_backend::active().dot(a, b)
}

/// First-maximum scan with strict `>` starting from `-∞` (see
/// [`fuse_backend::KernelBackend::max_scan`]); the max-pooling layer builds
/// its window argmax from this.
pub fn max_scan(x: &[f32]) -> Option<(usize, f32)> {
    fuse_backend::active().max_scan(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_matches_naive_triple_loop() {
        let m = 4;
        let k = 5;
        let n = 3;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * -0.21 + 1.0).collect();
        let mut out = vec![0.0; m * n];
        gemm(&a, &b, &mut out, m, k, n);
        let expected = naive_gemm(&a, &b, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_acc_accumulates_on_top() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut out = vec![10.0; 4];
        gemm_acc(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let k = 3;
        let m = 2;
        let n = 4;
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 + 1.0).collect(); // [k x m]
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect(); // [k x n]
                                                                          // explicit transpose of a -> [m x k]
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let expected = naive_gemm(&at, &b, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_at_b(&a, &b, &mut out, k, m, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        let m = 3;
        let k = 2;
        let n = 4;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 - 1.5).collect(); // [m x k]
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32) * 0.25 + 0.5).collect(); // [n x k]
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let expected = naive_gemm(&a, &bt, m, k, n);
        let mut out = vec![0.0; m * n];
        gemm_a_bt(&a, &b, &mut out, m, k, n);
        for (x, y) in out.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        let (m, k, n) = (37, 29, 23);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 1000) as f32 * 1e-3 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104_729) % 1000) as f32 * 1e-3 - 0.5).collect();
        let run = |threads: usize| {
            fuse_parallel::with_threads(threads, || {
                fuse_parallel::with_min_parallel_work(0, || {
                    let mut out = vec![0.0f32; m * n];
                    gemm(&a, &b, &mut out, m, k, n);
                    out
                })
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn simd_backend_is_bit_identical_to_scalar_for_all_products() {
        use fuse_backend::{with_backend, BackendChoice};
        // Widths off every lane multiple (1, 3, 7, 17) plus aligned 8.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 7, 17), (7, 17, 3), (5, 8, 8), (2, 3, 7)]
        {
            let a: Vec<f32> =
                (0..m.max(k) * k.max(m)).map(|i| (i % 19) as f32 * 0.3 - 2.0).collect();
            let b: Vec<f32> =
                (0..k * n.max(k) + n * k).map(|i| (i % 23) as f32 * 0.2 - 1.5).collect();
            let run = |choice| {
                with_backend(choice, || {
                    let mut g = vec![0.1f32; m * n];
                    gemm(&a[..m * k], &b[..k * n], &mut g, m, k, n);
                    gemm_acc(&a[..m * k], &b[..k * n], &mut g, m, k, n);
                    let mut gt = vec![0.0f32; m * n];
                    gemm_at_b(&a[..k * m], &b[..k * n], &mut gt, k, m, n);
                    let mut gbt = vec![0.0f32; m * n];
                    gemm_a_bt(&a[..m * k], &b[..n * k], &mut gbt, m, k, n);
                    (g, gt, gbt)
                })
            };
            assert_eq!(run(BackendChoice::Scalar), run(BackendChoice::Simd), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn elementwise_facade_routes_through_backend_bit_identically() {
        use fuse_backend::{with_backend, BackendChoice};
        let x: Vec<f32> = (0..17).map(|i| i as f32 * 0.7 - 5.0).collect();
        let run = |choice| {
            with_backend(choice, || {
                let mut y: Vec<f32> = (0..17).map(|i| i as f32 * -0.3).collect();
                axpy(1.5, &x, &mut y);
                add_assign(&mut y, &x);
                scale_assign(&mut y, 0.77);
                add_scalar_assign(&mut y, -0.1);
                (y, sum(&x), dot(&x, &x), max_scan(&x))
            })
        };
        assert_eq!(run(BackendChoice::Scalar), run(BackendChoice::Simd));
    }

    #[test]
    fn relaxed_affine_is_bit_identical_under_exact_choices() {
        use fuse_backend::{with_backend, BackendChoice};
        let (m, k, n) = (3usize, 33usize, 7usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.21 - 1.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i % 17) as f32 * 0.13 - 1.1).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.05).collect();
        for choice in [BackendChoice::Scalar, BackendChoice::Simd, BackendChoice::Auto] {
            with_backend(choice, || {
                let mut exact = vec![0.0f32; m * n];
                let mut relaxed = vec![0.0f32; m * n];
                affine_a_bt(&a, &b, &bias, &mut exact, m, k, n, true);
                affine_a_bt_relaxed(&a, &b, &bias, &mut relaxed, m, k, n, true);
                assert_eq!(exact, relaxed, "relaxed must be exact under {choice}");
            });
        }
    }

    #[test]
    fn relaxed_affine_under_simd_fma_stays_within_tolerance() {
        use fuse_backend::{with_backend, BackendChoice};
        let (m, k, n) = (4usize, 40usize, 9usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.21 - 1.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i % 17) as f32 * 0.13 - 1.1).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.05 - 0.2).collect();
        let mut exact = vec![0.0f32; m * n];
        affine_a_bt(&a, &b, &bias, &mut exact, m, k, n, false);
        with_backend(BackendChoice::SimdFma, || {
            // Exact dispatch demotes simd-fma: still bit-identical.
            let mut demoted = vec![0.0f32; m * n];
            affine_a_bt(&a, &b, &bias, &mut demoted, m, k, n, false);
            assert_eq!(exact, demoted, "exact dispatch must demote simd-fma");
            // Relaxed dispatch may fuse, but stays within a tight budget.
            let mut relaxed = vec![0.0f32; m * n];
            affine_a_bt_relaxed(&a, &b, &bias, &mut relaxed, m, k, n, false);
            for (e, r) in exact.iter().zip(&relaxed) {
                let tol = 1e-4 * e.abs().max(1.0);
                assert!((e - r).abs() <= tol, "relaxed {r} vs exact {e}");
            }
        });
    }

    #[test]
    fn outer_product() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0];
        let mut out = vec![0.0; 6];
        outer(&a, &b, &mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn axpy_panics_on_length_mismatch() {
        let x = [1.0, 2.0];
        let mut y = [0.0];
        axpy(1.0, &x, &mut y);
    }
}
