//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// The error carries enough context (the offending shapes or indices) to make
/// debugging shape mismatches in model code straightforward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor that was supplied.
        actual: usize,
    },
    /// An index or axis was out of bounds.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// The operation is undefined for an empty tensor.
    EmptyTensor,
    /// Convolution geometry is invalid (e.g. kernel larger than padded input).
    InvalidConvolution(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => {
                write!(f, "shape implies {expected} elements but {actual} were provided")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulMismatch { left, right } => {
                write!(f, "matmul inner dimensions disagree: {left:?} x {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor, found rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension of size {bound}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into a shape with {to} elements")
            }
            TensorError::EmptyTensor => write!(f, "operation is undefined for an empty tensor"),
            TensorError::InvalidConvolution(msg) => write!(f, "invalid convolution: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            TensorError::ShapeDataMismatch { expected: 4, actual: 3 },
            TensorError::ShapeMismatch { left: vec![2, 2], right: vec![3] },
            TensorError::MatmulMismatch { left: vec![2, 3], right: vec![4, 2] },
            TensorError::RankMismatch { expected: 2, actual: 1 },
            TensorError::IndexOutOfBounds { index: 9, bound: 3 },
            TensorError::ReshapeMismatch { from: 6, to: 8 },
            TensorError::EmptyTensor,
            TensorError::InvalidConvolution("kernel too large".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
