//! Dense row-major f32 tensor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse type of the FUSE reproduction: feature maps,
/// network parameters, gradients and intermediate activations are all plain
/// `Tensor`s. The type is intentionally simple — data is always owned,
/// contiguous and row-major.
///
/// ```
/// use fuse_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// assert!((x.mean() - 3.5).abs() < 1e-6);
/// # Ok::<(), fuse_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a data vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` differs
    /// from the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::new(&[data.len()]), data: data.to_vec() }
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with elements drawn from `N(0, std^2)`, seeded for
    /// reproducibility.
    pub fn randn(dims: &[usize], std: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new(0.0f32, std.max(f32::MIN_POSITIVE)).expect("std must be finite");
        let data = (0..len).map(|_| normal.sample(&mut rng)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn from `U(low, high)`, seeded for
    /// reproducibility.
    pub fn uniform(dims: &[usize], low: f32, high: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new_inclusive(low, high);
        let data = (0..len).map(|_| dist.sample(&mut rng)).collect();
        Tensor { shape, data }
    }

    /// Kaiming/He uniform initialisation for a layer with `fan_in` inputs.
    ///
    /// This is the initialisation used for the Conv2d and Linear layers of the
    /// MARS baseline CNN and the FUSE model.
    pub fn kaiming_uniform(dims: &[usize], fan_in: usize, seed: u64) -> Self {
        let bound = if fan_in > 0 { (6.0 / fan_in as f32).sqrt() } else { 1.0 };
        Tensor::uniform(dims, -bound, bound, seed)
    }

    /// Creates a rank-1 tensor with `n` evenly spaced values in `[start, end]`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        if n == 0 {
            return Tensor { shape: Shape::new(&[0]), data: Vec::new() };
        }
        if n == 1 {
            return Tensor::from_slice(&[start]);
        }
        let step = (end - start) / (n as f32 - 1.0);
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor { shape: Shape::new(&[n]), data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions of the tensor as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error when the index is invalid for this shape.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error when the index is invalid for this shape.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch { from: self.data.len(), to: shape.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Flattens the tensor to rank 1.
    pub fn flatten(&self) -> Self {
        Tensor { shape: Shape::new(&[self.data.len()]), data: self.data.clone() }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or an out-of-range row.
    pub fn row(&self, i: usize) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= r {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: r });
        }
        Ok(Tensor::from_slice(&self.data[i * c..(i + 1) * c]))
    }

    /// Returns the `i`-th slice along axis 0 (keeping the remaining axes).
    ///
    /// For a `[N, C, H, W]` tensor this returns the `[C, H, W]` sample `i`.
    ///
    /// # Errors
    ///
    /// Returns an error when the tensor is rank 0 or `i` is out of range.
    pub fn index_axis0(&self, i: usize) -> Result<Self> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let n = self.shape.dims()[0];
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
        }
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        let chunk: usize = rest.iter().product::<usize>().max(1);
        let data = self.data[i * chunk..(i + 1) * chunk].to_vec();
        Ok(Tensor { shape: Shape::new(&rest), data })
    }

    /// Stacks rank-k tensors of identical shape into a rank-(k+1) tensor along
    /// a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error when `items` is empty or shapes disagree.
    pub fn stack(items: &[Tensor]) -> Result<Self> {
        let first = items.first().ok_or(TensorError::EmptyTensor)?;
        let mut data = Vec::with_capacity(items.len() * first.len());
        for item in items {
            if !item.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: item.dims().to_vec(),
                });
            }
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates rank-1 tensors into a single rank-1 tensor.
    pub fn concat1d(items: &[Tensor]) -> Self {
        let mut data = Vec::new();
        for item in items {
            data.extend_from_slice(&item.data);
        }
        Tensor { shape: Shape::new(&[data.len()]), data }
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place element-wise addition (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        crate::linalg::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        crate::linalg::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar (on the active backend).
    pub fn scale(&self, s: f32) -> Self {
        let mut out = self.clone();
        crate::linalg::scale_assign(&mut out.data, s);
        out
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Element-wise ReLU (`max(x, 0)`).
    pub fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }

    /// Element-wise sign (`-1`, `0` or `1`).
    pub fn signum(&self) -> Self {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (in-order reduction — every backend uses the
    /// scalar left-to-right association, see `REPRODUCIBILITY.md`).
    pub fn sum(&self) -> f32 {
        crate::linalg::sum(&self.data)
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] when the tensor is empty.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |m| m.max(x))))
            .ok_or(TensorError::EmptyTensor)
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] when the tensor is empty.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |m| m.min(x))))
            .ok_or(TensorError::EmptyTensor)
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] when the tensor is empty.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyTensor);
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Squared L2 norm of all elements (in-order reduction, equal to
    /// `linalg::dot(x, x)` term by term).
    pub fn norm_sq(&self) -> f32 {
        crate::linalg::dot(&self.data, &self.data)
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Mean over axis 0 of a rank-2 tensor, producing a rank-1 tensor of the
    /// column means.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or empty tensors.
    pub fn mean_axis0(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if r == 0 {
            return Err(TensorError::EmptyTensor);
        }
        let mut out = vec![0.0f32; c];
        if c > 0 {
            for row in self.data.chunks_exact(c) {
                for (acc, x) in out.iter_mut().zip(row) {
                    *acc += x;
                }
            }
        }
        for v in &mut out {
            *v /= r as f32;
        }
        Tensor::from_vec(out, &[c])
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors (`[m, k] x [k, n] -> [m, n]`).
    ///
    /// # Errors
    ///
    /// Returns an error when either operand is not a matrix or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        if self.shape.rank() != 2 || other.shape.rank() != 2 {
            return Err(TensorError::MatmulMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::linalg::gemm(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.data.len() != other.data.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(crate::linalg::dot(&self.data, &other.data))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={}, len={})", self.shape, self.data.len())
    }
}

/// Generates `n` deterministic pseudo-random seeds from a master seed.
///
/// Model construction needs several independent initialisation streams (one
/// per layer); deriving them from a single user-supplied seed keeps the public
/// API simple while staying reproducible.
pub fn derive_seeds(master: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(master);
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).is_ok());
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let b = a.matmul(&i).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_matches_hand_computed_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulMismatch { .. })));
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]).unwrap(), 6.0);
        assert_eq!(t.at(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn elementwise_ops_respect_shapes() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::full(&[2, 2], 3.0);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0; 4]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0; 4]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0; 4]);
        assert_eq!(b.div(&b).unwrap().as_slice(), &[1.0; 4]);
        let c = Tensor::ones(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions_are_correct() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max().unwrap(), 3.0);
        assert_eq!(a.min().unwrap(), -4.0);
        assert_eq!(a.argmax().unwrap(), 2);
        assert_eq!(a.abs().sum(), 10.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reductions_reject_empty() {
        let a = Tensor::zeros(&[0]);
        assert!(a.max().is_err());
        assert!(a.min().is_err());
        assert!(a.argmax().is_err());
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn mean_axis0_computes_column_means() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0, 6.0, 7.0], &[2, 3]).unwrap();
        let m = a.mean_axis0().unwrap();
        assert_eq!(m.as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::linspace(0.0, 5.0, 6);
        let b = a.reshape(&[2, 3]).unwrap();
        assert_eq!(b.dims(), &[2, 3]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn index_axis0_extracts_samples() {
        let a = Tensor::linspace(0.0, 11.0, 12).reshape(&[3, 2, 2]).unwrap();
        let s1 = a.index_axis0(1).unwrap();
        assert_eq!(s1.dims(), &[2, 2]);
        assert_eq!(s1.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(a.index_axis0(3).is_err());
    }

    #[test]
    fn stack_builds_leading_axis() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(0).unwrap().sum(), 4.0);
        assert_eq!(s.index_axis0(1).unwrap().sum(), 0.0);
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[16], 1.0, 42);
        let b = Tensor::randn(&[16], 1.0, 42);
        let c = Tensor::randn(&[16], 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let a = Tensor::kaiming_uniform(&[1000], 10, 1);
        let b = Tensor::kaiming_uniform(&[1000], 1000, 1);
        assert!(a.abs().max().unwrap() > b.abs().max().unwrap());
        assert!(b.abs().max().unwrap() <= (6.0f32 / 1000.0).sqrt() + 1e-6);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(Tensor::linspace(3.0, 9.0, 1).as_slice(), &[3.0]);
        assert!(Tensor::linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn relu_and_signum() {
        let a = Tensor::from_slice(&[-2.0, 0.0, 3.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 3.0]);
        assert_eq!(a.signum().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn derive_seeds_is_deterministic() {
        assert_eq!(derive_seeds(7, 4), derive_seeds(7, 4));
        assert_ne!(derive_seeds(7, 4), derive_seeds(8, 4));
    }

    #[test]
    fn row_extraction() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }
}
