//! # fuse-tensor
//!
//! A minimal, dependency-light f32 tensor library that serves as the numerical
//! substrate for the FUSE mmWave human pose estimation reproduction.
//!
//! The crate deliberately implements only what the FUSE models and the radar
//! signal chain need — dense row-major tensors, element-wise arithmetic,
//! matrix multiplication, 2-D convolution primitives (im2col based), axis
//! reductions, and random initialisers — so that every numerical code path in
//! the reproduction is auditable.
//!
//! ```
//! use fuse_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), fuse_tensor::TensorError>(())
//! ```

pub mod conv;
pub mod error;
pub mod linalg;
pub mod pool;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use conv::{
    conv1x1_forward_into, conv1x1_forward_into_relaxed, conv2d_backward_input,
    conv2d_backward_weight, conv2d_forward, conv2d_forward_into, conv2d_forward_into_relaxed,
    Conv2dSpec,
};
pub use error::TensorError;
pub use pool::maxpool2d_forward_into;
pub use shape::Shape;
pub use stats::{mean_std, Normalizer};
pub use tensor::{derive_seeds, Tensor};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
