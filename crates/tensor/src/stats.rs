//! Normalisation statistics used by the dataset pipeline.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Mean and (population) standard deviation of a slice.
///
/// Returns `(0.0, 1.0)` for an empty slice so that downstream normalisation is
/// a no-op rather than a NaN factory.
pub fn mean_std(data: &[f32]) -> (f32, f32) {
    if data.is_empty() {
        return (0.0, 1.0);
    }
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    let var = data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / data.len() as f32;
    (mean, var.sqrt())
}

/// Per-channel z-score normaliser.
///
/// The FUSE pre-processing normalises each point-cloud feature channel
/// (x, y, z, Doppler, intensity) with statistics computed on the training
/// split only, then reuses the same statistics at validation/test/fine-tune
/// time — this type stores those statistics so they can be serialized with a
/// trained model.
///
/// ```
/// use fuse_tensor::{Normalizer, Tensor};
///
/// let train = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[4, 1])?;
/// let norm = Normalizer::fit(&train)?;
/// let z = norm.apply(&train)?;
/// assert!(z.mean().abs() < 1e-6);
/// # Ok::<(), fuse_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Normalizer {
    /// Fits per-column statistics on a `[N, C]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` is not a non-empty rank-2 tensor.
    pub fn fit(data: &Tensor) -> Result<Self> {
        if data.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: data.shape().rank() });
        }
        let (n, c) = (data.dims()[0], data.dims()[1]);
        if n == 0 {
            return Err(TensorError::EmptyTensor);
        }
        let mut means = vec![0.0f32; c];
        let mut stds = vec![0.0f32; c];
        for j in 0..c {
            let column: Vec<f32> = (0..n).map(|i| data.as_slice()[i * c + j]).collect();
            let (m, s) = mean_std(&column);
            means[j] = m;
            stds[j] = if s < 1e-8 { 1.0 } else { s };
        }
        Ok(Normalizer { means, stds })
    }

    /// Creates an identity normaliser (zero mean, unit std) for `c` channels.
    pub fn identity(c: usize) -> Self {
        Normalizer { means: vec![0.0; c], stds: vec![1.0; c] }
    }

    /// Reassembles a normaliser from per-channel statistics — the inverse of
    /// the [`Normalizer::means`] / [`Normalizer::stds`] accessors, used by
    /// the wire codec to reconstruct a normaliser bit-exactly on a remote
    /// host.
    ///
    /// # Panics
    ///
    /// Panics when the two vectors disagree in length (a decoded pair can
    /// only disagree if the encoder was wrong, which is a bug, not an input
    /// condition).
    pub fn from_stats(means: Vec<f32>, stds: Vec<f32>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds must cover the same channels");
        Normalizer { means, stds }
    }

    /// Number of channels this normaliser was fitted on.
    pub fn channels(&self) -> usize {
        self.means.len()
    }

    /// Per-channel means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Per-channel standard deviations.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }

    /// Applies z-score normalisation to a `[N, C]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the column count differs from the fitted channels.
    pub fn apply(&self, data: &Tensor) -> Result<Tensor> {
        if data.shape().rank() != 2 || data.dims()[1] != self.means.len() {
            return Err(TensorError::ShapeMismatch {
                left: data.dims().to_vec(),
                right: vec![0, self.means.len()],
            });
        }
        let c = self.means.len();
        let mut out = data.clone();
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let j = i % c;
            *v = (*v - self.means[j]) / self.stds[j];
        }
        Ok(out)
    }

    /// Inverts the normalisation of [`Normalizer::apply`].
    ///
    /// # Errors
    ///
    /// Returns an error if the column count differs from the fitted channels.
    pub fn invert(&self, data: &Tensor) -> Result<Tensor> {
        if data.shape().rank() != 2 || data.dims()[1] != self.means.len() {
            return Err(TensorError::ShapeMismatch {
                left: data.dims().to_vec(),
                right: vec![0, self.means.len()],
            });
        }
        let c = self.means.len();
        let mut out = data.clone();
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let j = i % c;
            *v = *v * self.stds[j] + self.means[j];
        }
        Ok(out)
    }

    /// Normalises a single channel value.
    pub fn apply_value(&self, channel: usize, value: f32) -> f32 {
        (value - self.means[channel]) / self.stds[channel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-6);
        assert!((s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mean_std_empty_is_identity() {
        assert_eq!(mean_std(&[]), (0.0, 1.0));
    }

    #[test]
    fn fit_apply_produces_zero_mean_unit_std() {
        let data =
            Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0], &[4, 2]).unwrap();
        let norm = Normalizer::fit(&data).unwrap();
        let z = norm.apply(&data).unwrap();
        for j in 0..2 {
            let col: Vec<f32> = (0..4).map(|i| z.as_slice()[i * 2 + j]).collect();
            let (m, s) = mean_std(&col);
            assert!(m.abs() < 1e-5);
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn invert_round_trips() {
        let data = Tensor::from_vec(vec![1.5, -3.0, 2.5, 7.0, -0.5, 0.25], &[3, 2]).unwrap();
        let norm = Normalizer::fit(&data).unwrap();
        let z = norm.apply(&data).unwrap();
        let back = norm.invert(&z).unwrap();
        for (a, b) in data.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let data = Tensor::from_vec(vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0], &[3, 2]).unwrap();
        let norm = Normalizer::fit(&data).unwrap();
        let z = norm.apply(&data).unwrap();
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fit_rejects_bad_shapes() {
        assert!(Normalizer::fit(&Tensor::zeros(&[3])).is_err());
        assert!(Normalizer::fit(&Tensor::zeros(&[0, 4])).is_err());
    }

    #[test]
    fn apply_rejects_channel_mismatch() {
        let data = Tensor::zeros(&[3, 2]);
        let norm = Normalizer::identity(5);
        assert!(norm.apply(&data).is_err());
        assert!(norm.invert(&data).is_err());
    }

    #[test]
    fn identity_normaliser_is_noop() {
        let data = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let norm = Normalizer::identity(2);
        assert_eq!(norm.apply(&data).unwrap(), data);
        assert_eq!(norm.apply_value(1, 3.5), 3.5);
    }
}
