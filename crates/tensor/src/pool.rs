//! 2-D max-pooling primitive shared by the layer stack and compiled plans.
//!
//! The kernel lives here — below both `fuse-nn` and `fuse-graph` — so the
//! legacy layer walk and arena-backed plan execution run the *same* code and
//! are bit-identical by construction, not by parallel maintenance of two
//! loops.

use crate::error::TensorError;
use crate::Result;

/// Max-pools a flattened `[N, C, H, W]` buffer over non-overlapping
/// `window × window` tiles into `out` (`[N, C, H/window, W/window]`).
///
/// Each window is scanned one contiguous row segment at a time through the
/// backend's first-maximum scan; combining row results with the same strict
/// `>` preserves the scalar (ky, kx)-order tie-breaking exactly, for every
/// backend (the scan is order-sensitive, so SIMD backends run it on the
/// scalar reference per the reproducibility contract). The backend is
/// resolved once, outside the per-window loops.
///
/// When `argmax` is provided it receives, per output element, the flat input
/// index of the selected maximum (the gradient routing table for the layer's
/// backward pass); plan execution passes `None`.
///
/// # Errors
///
/// Returns an error when the window is zero, the spatial extent is smaller
/// than the window, or any buffer is shorter than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn maxpool2d_forward_into(
    input: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    window: usize,
    out: &mut [f32],
    mut argmax: Option<&mut [usize]>,
) -> Result<()> {
    if window == 0 {
        return Err(TensorError::InvalidConvolution("pooling window must be nonzero".into()));
    }
    if h < window || w < window {
        return Err(TensorError::InvalidConvolution(format!(
            "input {h}x{w} smaller than pooling window {window}"
        )));
    }
    let out_h = h / window;
    let out_w = w / window;
    check_buffer(input.len(), n * c * h * w)?;
    check_buffer(out.len(), n * c * out_h * out_w)?;
    if let Some(ref am) = argmax {
        check_buffer(am.len(), n * c * out_h * out_w)?;
    }

    let be = fuse_backend::active();
    for s in 0..n {
        for ch in 0..c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..window {
                        let iy = oy * window + ky;
                        let base = ((s * c + ch) * h + iy) * w + ox * window;
                        if let Some((off, v)) = be.max_scan(&input[base..base + window]) {
                            if v > best {
                                best = v;
                                best_idx = base + off;
                            }
                        }
                    }
                    let out_idx = ((s * c + ch) * out_h + oy) * out_w + ox;
                    out[out_idx] = best;
                    if let Some(ref mut am) = argmax {
                        am[out_idx] = best_idx;
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_buffer(actual: usize, expected: usize) -> Result<()> {
    if actual < expected {
        return Err(TensorError::ShapeDataMismatch { expected, actual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_window_maxima() {
        let input = vec![
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            -1.0, -2.0, 0.5, 0.25, //
            -3.0, -4.0, 0.75, 0.1,
        ];
        let mut out = vec![0.0f32; 4];
        let mut argmax = vec![0usize; 4];
        maxpool2d_forward_into(&input, 1, 1, 4, 4, 2, &mut out, Some(&mut argmax)).unwrap();
        assert_eq!(out, vec![4.0, 8.0, -1.0, 0.75]);
        assert_eq!(argmax, vec![5, 7, 8, 14]);
    }

    #[test]
    fn first_maximum_wins_ties() {
        let input = vec![2.0, 2.0, 2.0, 2.0];
        let mut out = vec![0.0f32; 1];
        let mut argmax = vec![9usize; 1];
        maxpool2d_forward_into(&input, 1, 1, 2, 2, 2, &mut out, Some(&mut argmax)).unwrap();
        assert_eq!(out, vec![2.0]);
        assert_eq!(argmax, vec![0]);
    }

    #[test]
    fn rejects_degenerate_geometry_and_short_buffers() {
        let input = vec![0.0f32; 16];
        let mut out = vec![0.0f32; 4];
        assert!(maxpool2d_forward_into(&input, 1, 1, 4, 4, 0, &mut out, None).is_err());
        assert!(maxpool2d_forward_into(&input, 1, 1, 4, 4, 5, &mut out, None).is_err());
        assert!(maxpool2d_forward_into(&input[..8], 1, 1, 4, 4, 2, &mut out, None).is_err());
        assert!(maxpool2d_forward_into(&input, 1, 1, 4, 4, 2, &mut out[..2], None).is_err());
        let mut argmax = vec![0usize; 2];
        assert!(maxpool2d_forward_into(&input, 1, 1, 4, 4, 2, &mut out, Some(&mut argmax)).is_err());
    }
}
