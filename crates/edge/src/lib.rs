//! # fuse-edge
//!
//! A thin edge-deployment runtime for compiled `.fplan` plan artifacts.
//!
//! Deployment targets used to carry the full `fuse-nn` lowering stack and
//! recompile the model at every startup. This crate is the other half of the
//! `fuse-graph` artifact story: a `.fplan` written by
//! [`fuse_graph::ExecPlan::write_plan`] is fully self-contained — signature,
//! scheduled steps, arena layout, parameter snapshot — so the edge side needs
//! only this crate, `fuse-graph`'s executor and the `fuse-tensor` /
//! `fuse-backend` kernels. **No `fuse-nn`, no lowering, no startup
//! compilation.** Outputs are bit-identical to the in-memory plan the
//! artifact was exported from, on every backend × thread-count combination
//! the reproducibility contract covers.
//!
//! The same session also loads `.fplan` **v2** artifacts carrying
//! int8-quantized weights ([`fuse_graph::ExecPlan::quantize`] /
//! `ServeEngine::export_quantized_plan`): those serve through the
//! `fuse-quant` device seam under the relaxed contract, verified against
//! float goldens by declared tolerance ([`EdgeSession::is_quantized`]).
//!
//! ```
//! use fuse_edge::EdgeSession;
//! use fuse_graph::{Graph, TensorMeta};
//!
//! // Producer side (normally a training/serving host): compile and export.
//! let mut g = Graph::new(TensorMeta::f32(&[3]));
//! g.push_linear("sum", 3, 1, &[1.0, 1.0, 1.0], &[0.0])?;
//! let bytes = g.compile(2)?.to_bytes();
//!
//! // Edge side: load the artifact and serve — no model, no compiler.
//! let mut session = EdgeSession::from_bytes(&bytes)?;
//! assert_eq!(session.infer(&[1.0, 2.0, 3.0], 1)?, &[6.0]);
//! # Ok::<(), fuse_edge::EdgeError>(())
//! ```

#![warn(missing_docs)]

use std::path::Path;

use fuse_graph::ExecPlan;

pub use fuse_graph::{GraphError as EdgeError, ShapeSignature, TensorMeta};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EdgeError>;

/// A loaded `.fplan` artifact, ready to serve inference requests.
///
/// Wraps the deserialized [`ExecPlan`] with nothing added: the artifact
/// already carries everything execution needs, and keeping this type thin is
/// the proof. The session is stateful only in the sense that the plan's
/// arena is reused across calls — results do not depend on prior calls.
#[derive(Debug)]
pub struct EdgeSession {
    plan: ExecPlan,
}

impl EdgeSession {
    /// Loads a `.fplan` artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::Io`] when the file cannot be read and the
    /// [`fuse_graph::ExecPlan::from_bytes`] errors for a corrupt or
    /// incompatible artifact.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Ok(EdgeSession { plan: ExecPlan::read_plan(path)? })
    }

    /// Builds a session from in-memory `.fplan` bytes.
    ///
    /// # Errors
    ///
    /// Returns the [`fuse_graph::ExecPlan::from_bytes`] error for a corrupt
    /// or incompatible artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(EdgeSession { plan: ExecPlan::from_bytes(bytes)? })
    }

    /// Runs the plan on `batch` samples packed contiguously in `input`,
    /// returning the batched output (`batch * output_meta().len()`
    /// elements). Steady state allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::BatchOutOfRange`] or
    /// [`EdgeError::InputLenMismatch`] for invalid calls, exactly like
    /// [`ExecPlan::run`].
    pub fn infer(&mut self, input: &[f32], batch: usize) -> Result<&[f32]> {
        self.plan.run(input, batch)
    }

    /// The shape identity recorded in the artifact (layer names in push
    /// order, parameter count, input/output shapes).
    pub fn signature(&self) -> &ShapeSignature {
        self.plan.signature()
    }

    /// Per-sample shape of the expected input.
    pub fn input_meta(&self) -> &TensorMeta {
        self.plan.input_meta()
    }

    /// Per-sample shape of the produced output.
    pub fn output_meta(&self) -> &TensorMeta {
        self.plan.output_meta()
    }

    /// Largest batch the plan was compiled for.
    pub fn max_batch(&self) -> usize {
        self.plan.max_batch()
    }

    /// Whether the artifact carries int8-quantized weights (a `.fplan` v2
    /// relaxed-contract plan). Quantized sessions serve through the
    /// `fuse-quant` device seam and are verified against float goldens by
    /// declared tolerance instead of bit equality.
    pub fn is_quantized(&self) -> bool {
        self.plan.is_quantized()
    }

    /// Unwraps the underlying execution plan.
    pub fn into_plan(self) -> ExecPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use fuse_graph::{Graph, GraphError, TensorMeta};
    use fuse_tensor::Tensor;

    use super::*;

    fn artifact_bytes() -> (Vec<u8>, ExecPlan) {
        let cw = Tensor::randn(&[3, 2, 3, 3], 0.5, 81);
        let cb = Tensor::randn(&[3], 0.1, 82);
        let w = Tensor::randn(&[5, 12], 0.2, 83);
        let b = Tensor::randn(&[5], 0.1, 84);
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_conv2d("conv", fuse_tensor::Conv2dSpec::same(2, 3, 3), cw.as_slice(), cb.as_slice())
            .unwrap();
        g.push_relu("relu").unwrap();
        g.push_maxpool2d("pool", 2).unwrap();
        g.push_flatten("flatten").unwrap();
        g.push_linear("fc", 12, 5, w.as_slice(), b.as_slice()).unwrap();
        let plan = g.compile(4).unwrap();
        (plan.to_bytes(), plan)
    }

    #[test]
    fn session_matches_the_in_memory_plan_bit_for_bit() {
        let (bytes, mut plan) = artifact_bytes();
        let mut session = EdgeSession::from_bytes(&bytes).unwrap();
        assert_eq!(session.max_batch(), 4);
        assert_eq!(session.input_meta().dims(), &[2, 4, 4]);
        assert_eq!(session.output_meta().dims(), &[5]);
        assert_eq!(session.signature().layer_names().len(), 5);
        for batch in 1..=4usize {
            let input = Tensor::randn(&[batch, 2, 4, 4], 1.0, 85 + batch as u64);
            assert_eq!(
                session.infer(input.as_slice(), batch).unwrap(),
                plan.run(input.as_slice(), batch).unwrap()
            );
        }
    }

    #[test]
    fn quantized_artifacts_serve_within_tolerance_of_the_float_plan() {
        use fuse_quant::compare::{assert_close_ulp, top1, Tolerance};
        let (_, float_plan) = artifact_bytes();
        let bytes = float_plan.quantize().unwrap().to_bytes();
        let mut session = EdgeSession::from_bytes(&bytes).unwrap();
        assert!(session.is_quantized());
        assert_eq!(session.signature(), float_plan.signature());

        let mut float_plan = float_plan;
        let budget = Tolerance { max_ulp: 0, max_abs: 5e-2, max_rel: 2e-2 };
        for batch in 1..=4usize {
            let input = Tensor::randn(&[batch, 2, 4, 4], 1.0, 90 + batch as u64);
            let got = session.infer(input.as_slice(), batch).unwrap().to_vec();
            let want = float_plan.run(input.as_slice(), batch).unwrap();
            assert_close_ulp(want, &got, &budget, &format!("edge quantized batch {batch}"));
            for (g, w) in got.chunks(5).zip(want.chunks(5)) {
                assert_eq!(top1(g), top1(w), "top-1 agreement must hold per sample");
            }
        }
    }

    #[test]
    fn corrupt_artifacts_are_typed_errors() {
        let (bytes, _) = artifact_bytes();
        assert!(matches!(
            EdgeSession::from_bytes(&bytes[..bytes.len() / 2]),
            Err(GraphError::Truncated { .. }) | Err(GraphError::ChecksumMismatch { .. })
        ));
        assert!(matches!(EdgeSession::load("/nonexistent/model.fplan"), Err(GraphError::Io(_))));
    }
}
