//! Model evaluation: per-axis MAE in centimetres.

use fuse_dataset::EncodedDataset;
use fuse_nn::{mae_per_axis, AxisMae, Sequential};
use fuse_parallel as par;
use fuse_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::Result;

/// Pose-estimation error of a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PoseError {
    /// Per-axis MAE in metres (the unit of the labels).
    pub meters: AxisMae,
}

impl PoseError {
    /// Per-axis MAE in centimetres — the unit the paper reports.
    pub fn centimeters(&self) -> AxisMae {
        self.meters.to_centimeters()
    }

    /// Average MAE over the three axes, in centimetres.
    pub fn average_cm(&self) -> f32 {
        self.centimeters().average()
    }
}

impl std::fmt::Display for PoseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cm = self.centimeters();
        write!(
            f,
            "X={:.1} cm, Y={:.1} cm, Z={:.1} cm, avg={:.1} cm",
            cm.x,
            cm.y,
            cm.z,
            cm.average()
        )
    }
}

/// Evaluates a model on an encoded dataset and returns the per-axis MAE.
///
/// Inference runs in evaluation mode (dropout disabled) and in mini-batches of
/// `batch_size` samples to bound memory usage.
///
/// # Errors
///
/// Returns an error when the dataset is empty or shapes are inconsistent.
pub fn evaluate_model(
    model: &mut Sequential,
    data: &EncodedDataset,
    batch_size: usize,
) -> Result<PoseError> {
    if data.is_empty() {
        return Err(FuseError::Experiment("cannot evaluate on an empty dataset".into()));
    }
    let mut predictions = Vec::new();
    let mut targets = Vec::new();
    for result in forward_batches(model, data, batch_size) {
        let (output, labels) = result?;
        predictions.push(output);
        targets.push(labels);
    }
    let pred = concat_rows(&predictions)?;
    let target = concat_rows(&targets)?;
    let meters = mae_per_axis(&pred, &target)?;
    Ok(PoseError { meters })
}

/// Splits `0..n` into `batch_size` ranges.
fn batch_ranges(n: usize, batch_size: usize) -> Vec<(usize, usize)> {
    let batch_size = batch_size.max(1);
    (0..n.div_ceil(batch_size)).map(|b| (b * batch_size, ((b + 1) * batch_size).min(n))).collect()
}

/// Runs eval-mode inference over every mini-batch, fanning batches out across
/// the `fuse-parallel` pool when the dataset is large enough.
///
/// Parallel bands run on private model clones — one clone per band, not per
/// mini-batch, so the deep copy of ~1 M parameters happens at most
/// `available_threads()` times per evaluation. Eval-mode forward is a pure
/// function of (parameters, input), so results are bit-identical to the
/// serial in-place path and batches are returned in dataset order.
fn forward_batches(
    model: &mut Sequential,
    data: &EncodedDataset,
    batch_size: usize,
) -> Vec<Result<(Tensor, Tensor)>> {
    let ranges = batch_ranges(data.len(), batch_size);
    let run_batch =
        |&(start, end): &(usize, usize), model: &mut Sequential| -> Result<(Tensor, Tensor)> {
            let indices: Vec<usize> = (start..end).collect();
            let (inputs, labels) = data.gather(&indices)?;
            Ok((model.forward(&inputs, false)?, labels))
        };
    if ranges.len() > 1 && par::parallel_beneficial(data.len() * model.param_len()) {
        let model = &*model;
        let band_size = ranges.len().div_ceil(par::available_threads().max(1));
        let bands: Vec<&[(usize, usize)]> = ranges.chunks(band_size).collect();
        let per_band = par::par_map(&bands, |_, band| {
            let mut model = model.clone();
            band.iter().map(|range| run_batch(range, &mut model)).collect::<Vec<_>>()
        });
        per_band.into_iter().flatten().collect()
    } else {
        ranges.iter().map(|range| run_batch(range, model)).collect()
    }
}

/// Computes predictions of the model for a whole dataset as a `[N, 57]`
/// tensor, batched to bound memory usage.
///
/// # Errors
///
/// Returns an error when the dataset is empty.
pub fn predict_all(
    model: &mut Sequential,
    data: &EncodedDataset,
    batch_size: usize,
) -> Result<Tensor> {
    if data.is_empty() {
        return Err(FuseError::Experiment("cannot predict on an empty dataset".into()));
    }
    let mut predictions = Vec::new();
    for result in forward_batches(model, data, batch_size) {
        predictions.push(result?.0);
    }
    concat_rows(&predictions)
}

/// Mean absolute error of each individual joint, in centimetres, averaged
/// over the three axes.
///
/// The paper reports per-axis aggregates; a per-joint breakdown is what a
/// rehabilitation application actually inspects (wrist/ankle accuracy matters
/// more than spine accuracy for most exercises), so the evaluation module
/// exposes it as well.
///
/// # Errors
///
/// Returns an error when the dataset is empty.
pub fn per_joint_mae_cm(
    model: &mut Sequential,
    data: &EncodedDataset,
    batch_size: usize,
) -> Result<Vec<(fuse_skeleton::Joint, f32)>> {
    let pred = predict_all(model, data, batch_size)?;
    let (_, labels) = data.full_tensors()?;
    let n = pred.dims()[0];
    let mut out = Vec::with_capacity(fuse_skeleton::JOINT_COUNT);
    for joint in fuse_skeleton::Joint::ALL {
        let j = joint.index();
        let mut sum = 0.0f64;
        for row in 0..n {
            for axis in 0..3 {
                let idx = row * 57 + j * 3 + axis;
                sum += (pred.as_slice()[idx] - labels.as_slice()[idx]).abs() as f64;
            }
        }
        out.push((joint, (sum / (n * 3) as f64 * 100.0) as f32));
    }
    Ok(out)
}

fn concat_rows(parts: &[Tensor]) -> Result<Tensor> {
    let cols = parts
        .first()
        .ok_or_else(|| FuseError::Experiment("no batches to concatenate".into()))?
        .dims()[1];
    let mut data = Vec::new();
    let mut rows = 0usize;
    for p in parts {
        rows += p.dims()[0];
        data.extend_from_slice(p.as_slice());
    }
    Ok(Tensor::from_vec(data, &[rows, cols])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build_mars_cnn, ModelConfig};
    use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
    };

    fn small_encoded() -> EncodedDataset {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
    }

    #[test]
    fn evaluation_returns_finite_positive_errors() {
        let data = small_encoded();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 1).unwrap();
        let error = evaluate_model(&mut model, &data, 16).unwrap();
        assert!(error.meters.average() > 0.0);
        assert!(error.average_cm().is_finite());
        // An untrained model should be decimetres-to-metres off.
        assert!(error.average_cm() > 5.0);
    }

    #[test]
    fn batch_size_does_not_change_the_result() {
        let data = small_encoded();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 2).unwrap();
        let a = evaluate_model(&mut model, &data, 7).unwrap();
        let b = evaluate_model(&mut model, &data, 64).unwrap();
        assert!((a.meters.average() - b.meters.average()).abs() < 1e-5);
    }

    #[test]
    fn predict_all_shape_matches_dataset() {
        let data = small_encoded();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 3).unwrap();
        let pred = predict_all(&mut model, &data, 32).unwrap();
        assert_eq!(pred.dims(), &[data.len(), 57]);
    }

    #[test]
    fn per_joint_breakdown_covers_all_19_joints() {
        let data = small_encoded();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 8).unwrap();
        let breakdown = per_joint_mae_cm(&mut model, &data, 32).unwrap();
        assert_eq!(breakdown.len(), 19);
        assert!(breakdown.iter().all(|(_, e)| e.is_finite() && *e > 0.0));
        // The mean of the per-joint errors equals the overall average error.
        let mean: f32 = breakdown.iter().map(|(_, e)| e).sum::<f32>() / 19.0;
        let overall = evaluate_model(&mut model, &data, 32).unwrap().average_cm();
        assert!((mean - overall).abs() < 0.15 * overall, "mean {mean} vs overall {overall}");
    }

    #[test]
    fn display_reports_centimetres() {
        let err = PoseError { meters: AxisMae { x: 0.05, y: 0.03, z: 0.07 } };
        let text = err.to_string();
        assert!(text.contains("X=5.0 cm"));
        assert!((err.average_cm() - 5.0).abs() < 1e-4);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let data = small_encoded();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 4).unwrap();
        // Construct an artificially empty dataset is not possible through the
        // public API, so exercise the error path via gather on empty indices.
        assert!(data.gather(&[]).is_err());
        // And confirm evaluation on valid data still works.
        assert!(evaluate_model(&mut model, &data, 16).is_ok());
    }
}
