//! Error type for the FUSE framework.

use std::error::Error;
use std::fmt;

use fuse_dataset::DatasetError;
use fuse_nn::NnError;
use fuse_radar::RadarError;
use fuse_tensor::TensorError;

/// Error returned by the FUSE training, fine-tuning and experiment code.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A neural-network operation failed.
    Nn(NnError),
    /// A dataset operation failed.
    Dataset(DatasetError),
    /// A radar-simulation operation failed.
    Radar(RadarError),
    /// A training or experiment configuration is invalid.
    InvalidConfig(String),
    /// An experiment could not produce a result (e.g. empty evaluation set).
    Experiment(String),
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::Tensor(e) => write!(f, "tensor error: {e}"),
            FuseError::Nn(e) => write!(f, "neural network error: {e}"),
            FuseError::Dataset(e) => write!(f, "dataset error: {e}"),
            FuseError::Radar(e) => write!(f, "radar error: {e}"),
            FuseError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FuseError::Experiment(msg) => write!(f, "experiment error: {msg}"),
        }
    }
}

impl Error for FuseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FuseError::Tensor(e) => Some(e),
            FuseError::Nn(e) => Some(e),
            FuseError::Dataset(e) => Some(e),
            FuseError::Radar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for FuseError {
    fn from(e: TensorError) -> Self {
        FuseError::Tensor(e)
    }
}

impl From<NnError> for FuseError {
    fn from(e: NnError) -> Self {
        FuseError::Nn(e)
    }
}

impl From<DatasetError> for FuseError {
    fn from(e: DatasetError) -> Self {
        FuseError::Dataset(e)
    }
}

impl From<RadarError> for FuseError {
    fn from(e: RadarError) -> Self {
        FuseError::Radar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FuseError = TensorError::EmptyTensor.into();
        assert!(e.source().is_some());
        let e: FuseError = NnError::ParamLengthMismatch { expected: 1, actual: 2 }.into();
        assert!(e.to_string().contains("neural network"));
        let e: FuseError = DatasetError::EmptySplit("x".into()).into();
        assert!(e.to_string().contains("dataset"));
        let e: FuseError = RadarError::FftLengthNotPowerOfTwo(3).into();
        assert!(e.to_string().contains("radar"));
        assert!(FuseError::Experiment("no frames".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FuseError>();
    }
}
