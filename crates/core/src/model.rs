//! The MARS baseline CNN architecture shared by the baseline and FUSE.
//!
//! §4.1 of the paper: "two convolution layers with ReLU activations, followed
//! by two FC layers, with a total model of 1,095,115 parameters. The number
//! of neurons of the two FC layers is 512 and 57" — the 57 outputs being the
//! x/y/z coordinates of the 19 joints. The FUSE model uses the same
//! architecture ("the proposed CNN trained using the FUSE framework has the
//! same dimensions and model size for a fair comparison"), so this module is
//! the single place the architecture is defined.

use fuse_nn::layers::{Conv2d, Flatten, Linear, Relu};
use fuse_nn::{MaxPool2d, Sequential};
use fuse_tensor::{derive_seeds, Conv2dSpec};
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::Result;

/// Hyper-parameters of the MARS CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of input channels (5: x, y, z, Doppler, intensity).
    pub in_channels: usize,
    /// Spatial height of the input feature map.
    pub height: usize,
    /// Spatial width of the input feature map.
    pub width: usize,
    /// Filters in the first convolution layer.
    pub conv1_filters: usize,
    /// Filters in the second convolution layer.
    pub conv2_filters: usize,
    /// Convolution kernel size.
    pub kernel: usize,
    /// Neurons in the first fully-connected layer.
    pub hidden: usize,
    /// Output dimensionality (57 = 19 joints × 3 coordinates).
    pub outputs: usize,
}

impl Default for ModelConfig {
    /// The configuration from §4.1 (≈1.1 M parameters).
    fn default() -> Self {
        ModelConfig {
            in_channels: 5,
            height: 8,
            width: 8,
            conv1_filters: 16,
            conv2_filters: 32,
            kernel: 3,
            hidden: 512,
            outputs: 57,
        }
    }
}

impl ModelConfig {
    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        ModelConfig { conv1_filters: 4, conv2_filters: 8, hidden: 32, ..ModelConfig::default() }
    }

    /// Number of inputs to the first fully-connected layer.
    pub fn flattened_len(&self) -> usize {
        self.conv2_filters * self.height * self.width
    }

    /// Total number of scalar parameters of the resulting model.
    pub fn param_count(&self) -> usize {
        let conv1 =
            self.conv1_filters * self.in_channels * self.kernel * self.kernel + self.conv1_filters;
        let conv2 = self.conv2_filters * self.conv1_filters * self.kernel * self.kernel
            + self.conv2_filters;
        let fc1 = self.flattened_len() * self.hidden + self.hidden;
        let fc2 = self.hidden * self.outputs + self.outputs;
        conv1 + conv2 + fc1 + fc2
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] when any dimension is zero.
    pub fn validate(&self) -> Result<()> {
        let dims = [
            self.in_channels,
            self.height,
            self.width,
            self.conv1_filters,
            self.conv2_filters,
            self.kernel,
            self.hidden,
            self.outputs,
        ];
        if dims.contains(&0) {
            return Err(FuseError::InvalidConfig("model dimensions must be nonzero".into()));
        }
        Ok(())
    }
}

/// Builds the MARS CNN: Conv(C→16) → ReLU → Conv(16→32) → ReLU → Flatten →
/// FC(2048→512) → ReLU → FC(512→57).
///
/// # Errors
///
/// Returns an error when the configuration is invalid.
pub fn build_mars_cnn(config: &ModelConfig, seed: u64) -> Result<Sequential> {
    config.validate()?;
    let seeds = derive_seeds(seed, 4);
    let conv1 = Conv2dSpec::same(config.in_channels, config.conv1_filters, config.kernel);
    let conv2 = Conv2dSpec::same(config.conv1_filters, config.conv2_filters, config.kernel);
    Ok(Sequential::new(vec![
        Box::new(Conv2d::new(conv1, seeds[0])?),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(conv2, seeds[1])?),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(config.flattened_len(), config.hidden, seeds[2])?),
        Box::new(Relu::new()),
        Box::new(Linear::new(config.hidden, config.outputs, seeds[3])?),
    ]))
}

/// Builds the pooled MARS-CNN variant: the same two-conv encoder followed by
/// a non-overlapping `window × window` max-pooling stage before flattening —
/// Conv(C→16) → ReLU → Conv(16→32) → ReLU → MaxPool(window) → Flatten →
/// FC(2048/window²→512) → ReLU → FC(512→57). Pooling shrinks the first FC
/// layer by `window²`, trading a little spatial resolution for a much
/// smaller parameter count; like the plain builder, the whole stack lowers
/// to a compiled `fuse-graph` plan (max pooling included).
///
/// # Errors
///
/// Returns an error when the configuration is invalid or the window does not
/// evenly divide the feature-map geometry.
pub fn build_pooled_mars_cnn(config: &ModelConfig, window: usize, seed: u64) -> Result<Sequential> {
    config.validate()?;
    if window == 0 || !config.height.is_multiple_of(window) || !config.width.is_multiple_of(window)
    {
        return Err(FuseError::InvalidConfig(format!(
            "pooling window {window} must evenly divide the {}x{} feature map",
            config.height, config.width
        )));
    }
    let seeds = derive_seeds(seed, 4);
    let conv1 = Conv2dSpec::same(config.in_channels, config.conv1_filters, config.kernel);
    let conv2 = Conv2dSpec::same(config.conv1_filters, config.conv2_filters, config.kernel);
    let pooled_len = config.conv2_filters * (config.height / window) * (config.width / window);
    Ok(Sequential::new(vec![
        Box::new(Conv2d::new(conv1, seeds[0])?),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(conv2, seeds[1])?),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(window)?),
        Box::new(Flatten::new()),
        Box::new(Linear::new(pooled_len, config.hidden, seeds[2])?),
        Box::new(Relu::new()),
        Box::new(Linear::new(config.hidden, config.outputs, seeds[3])?),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_tensor::Tensor;

    #[test]
    fn default_model_size_is_close_to_the_paper() {
        let config = ModelConfig::default();
        let model = build_mars_cnn(&config, 1).unwrap();
        // The paper reports 1,095,115 parameters; this architecture lands
        // within 2 % of that (the difference is bookkeeping in how the paper
        // counts the flattened dimension).
        let params = model.param_len();
        assert_eq!(params, config.param_count());
        let paper = 1_095_115f32;
        assert!(
            (params as f32 - paper).abs() / paper < 0.02,
            "parameter count {params} deviates from the paper's 1,095,115"
        );
    }

    #[test]
    fn forward_shape_is_batch_by_57() {
        let config = ModelConfig::default();
        let mut model = build_mars_cnn(&config, 2).unwrap();
        let x = Tensor::randn(&[4, 5, 8, 8], 1.0, 3);
        let y = model.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[4, 57]);
    }

    #[test]
    fn backward_pass_populates_all_gradients() {
        let config = ModelConfig::tiny();
        let mut model = build_mars_cnn(&config, 4).unwrap();
        let x = Tensor::randn(&[2, 5, 8, 8], 1.0, 5);
        let y = model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&Tensor::ones(y.dims())).unwrap();
        let grads = model.flat_grads();
        let nonzero = grads.iter().filter(|&&g| g != 0.0).count();
        // With ReLU activations a sizeable fraction of the gradient entries is
        // legitimately zero (dead units for this mini-batch); require that a
        // substantial share is nonzero and that every layer received *some*
        // gradient signal.
        assert!(
            nonzero as f32 > 0.2 * grads.len() as f32,
            "too many zero gradients: {nonzero}/{}",
            grads.len()
        );
        for (range, name) in model.layer_param_ranges().iter().zip(model.layer_names()) {
            if !range.is_empty() {
                let layer_nonzero = grads[range.clone()].iter().any(|&g| g != 0.0);
                assert!(layer_nonzero, "layer {name} received no gradient");
            }
        }
    }

    #[test]
    fn models_with_same_seed_are_identical() {
        let config = ModelConfig::tiny();
        let a = build_mars_cnn(&config, 7).unwrap();
        let b = build_mars_cnn(&config, 7).unwrap();
        let c = build_mars_cnn(&config, 8).unwrap();
        assert_eq!(a.flat_params(), b.flat_params());
        assert_ne!(a.flat_params(), c.flat_params());
    }

    #[test]
    fn pooled_variant_shrinks_the_fc_stage_and_keeps_the_output_head() {
        let config = ModelConfig::tiny();
        let mut model = build_pooled_mars_cnn(&config, 2, 3).unwrap();
        let x = Tensor::randn(&[2, 5, 8, 8], 1.0, 4);
        let y = model.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 57]);
        assert!(
            model.param_len() < build_mars_cnn(&config, 3).unwrap().param_len(),
            "pooling must shrink the first FC layer"
        );
        assert!(build_pooled_mars_cnn(&config, 3, 1).is_err(), "3 does not divide 8");
        assert!(build_pooled_mars_cnn(&config, 0, 1).is_err());
    }

    #[test]
    fn config_validation_rejects_zero_dims() {
        let config = ModelConfig { hidden: 0, ..ModelConfig::default() };
        assert!(build_mars_cnn(&config, 1).is_err());
    }

    #[test]
    fn last_layer_mask_covers_the_output_head() {
        let config = ModelConfig::tiny();
        let model = build_mars_cnn(&config, 1).unwrap();
        let mask = model.last_layer_mask();
        let trainable = mask.iter().filter(|&&m| m).count();
        assert_eq!(trainable, config.hidden * config.outputs + config.outputs);
    }
}
