//! Figure 3: baseline vs FUSE while fine-tuning **all layers**.

use crate::experiments::adaptation::{self, AdaptationResult};
use crate::experiments::profile::ExperimentProfile;
use crate::finetune::FineTuneScope;
use crate::Result;

/// Runs the Figure 3 experiment (fine-tune all layers) at the given profile
/// scale.
///
/// # Errors
///
/// Propagates dataset, training and evaluation errors.
pub fn run(profile: &ExperimentProfile) -> Result<AdaptationResult> {
    adaptation::run(profile, FineTuneScope::AllLayers)
}

/// Renders the Figure 3 series with its canonical title.
pub fn render(result: &AdaptationResult) -> String {
    result.render_series("Figure 3: MAE vs fine-tuning epoch, all layers (baseline vs FUSE)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PoseError;
    use crate::finetune::FineTuneResult;
    use fuse_nn::AxisMae;

    #[test]
    fn render_uses_figure3_title() {
        let mk =
            |cm: f32| PoseError { meters: AxisMae { x: cm / 100.0, y: cm / 100.0, z: cm / 100.0 } };
        let curve = FineTuneResult {
            new_data_error: vec![mk(10.0), mk(8.0)],
            original_data_error: vec![mk(7.0), mk(7.5)],
            train_loss: vec![0.1],
        };
        let result = AdaptationResult {
            scope: FineTuneScope::AllLayers,
            baseline: curve.clone(),
            fuse: curve,
            intersection: None,
            finetune_frames: 10,
            evaluation_frames: 20,
        };
        assert!(render(&result).contains("Figure 3"));
        assert!(render(&result).contains("all layers"));
    }
}
