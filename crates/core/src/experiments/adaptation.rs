//! Shared machinery for the adaptation experiments (Figures 3–4, Table 2).
//!
//! §4.3 of the paper: the dataset is split so that one movement ("right limb
//! extension") and one subject (user 4) never appear during offline training.
//! A baseline model (conventional supervised training) and the FUSE model
//! (meta-training per Algorithm 1) are then fine-tuned on a small number of
//! online frames from the held-out user/movement and evaluated after every
//! epoch on both the new data and the original data.

use fuse_dataset::{
    encode_dataset, encode_dataset_with_normalizer, per_movement_split, Dataset, EncodedDataset,
    FeatureMapBuilder, FrameFusion, LeaveOneOutSplit, MarsSynthesizer, SplitRatios,
};
use serde::{Deserialize, Serialize};

use crate::baseline::Trainer;
use crate::error::FuseError;
use crate::experiments::profile::ExperimentProfile;
use crate::experiments::report;
use crate::finetune::{fine_tune, intersection_epoch, FineTuneResult, FineTuneScope};
use crate::meta::MetaTrainer;
use crate::model::build_mars_cnn;
use crate::Result;

/// Which adaptation scenario is being run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptationScenario {
    /// Which layers are fine-tuned online.
    pub scope: FineTuneScope,
}

/// Result of one adaptation experiment (one fine-tuning scope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationResult {
    /// The fine-tuning scope this result corresponds to.
    pub scope: FineTuneScope,
    /// Error trajectory of the conventionally trained baseline.
    pub baseline: FineTuneResult,
    /// Error trajectory of the meta-trained FUSE model.
    pub fuse: FineTuneResult,
    /// The Table 2 "intersection" epoch: first epoch at which the baseline's
    /// new-data MAE meets the FUSE model's.
    pub intersection: Option<usize>,
    /// Number of online frames used for fine-tuning.
    pub finetune_frames: usize,
    /// Number of online frames used for evaluation.
    pub evaluation_frames: usize,
}

impl AdaptationResult {
    /// Renders the per-epoch MAE series (the curves of Figures 3/4) as a
    /// table: one row per epoch, columns for baseline/FUSE on new/original
    /// data, all in centimetres.
    pub fn render_series(&self, title: &str) -> String {
        let epochs = self.baseline.new_data_error.len().min(self.fuse.new_data_error.len());
        let rows: Vec<Vec<String>> = (0..epochs)
            .map(|e| {
                vec![
                    e.to_string(),
                    format!("{:.1}", self.baseline.original_data_error[e].average_cm()),
                    format!("{:.1}", self.fuse.original_data_error[e].average_cm()),
                    format!("{:.1}", self.baseline.new_data_error[e].average_cm()),
                    format!("{:.1}", self.fuse.new_data_error[e].average_cm()),
                ]
            })
            .collect();
        let mut out = report::format_table(
            title,
            &[
                "Epoch",
                "Baseline orig (cm)",
                "FUSE orig (cm)",
                "Baseline new (cm)",
                "FUSE new (cm)",
            ],
            &rows,
        );
        match self.intersection {
            Some(e) => out.push_str(&format!(
                "Intersection epoch (baseline reaches FUSE on new data): {e}\n"
            )),
            None => out.push_str("Intersection epoch: not reached within the recorded range\n"),
        }
        out
    }

    /// Writes the series to `target/experiment-results/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Returns an error when the CSV cannot be written.
    pub fn write_csv(&self, name: &str) -> Result<std::path::PathBuf> {
        let epochs = self.baseline.new_data_error.len().min(self.fuse.new_data_error.len());
        let rows: Vec<Vec<String>> = (0..epochs)
            .map(|e| {
                vec![
                    e.to_string(),
                    format!("{:.4}", self.baseline.original_data_error[e].average_cm()),
                    format!("{:.4}", self.fuse.original_data_error[e].average_cm()),
                    format!("{:.4}", self.baseline.new_data_error[e].average_cm()),
                    format!("{:.4}", self.fuse.new_data_error[e].average_cm()),
                ]
            })
            .collect();
        report::write_csv(
            name,
            &[
                "epoch",
                "baseline_original_cm",
                "fuse_original_cm",
                "baseline_new_cm",
                "fuse_new_cm",
            ],
            &rows,
        )
    }

    /// Speed-up factor of the paper's headline claim: the number of epochs
    /// the baseline needs to reach the new-data MAE that FUSE reaches after
    /// `fuse_epochs` epochs, divided by `fuse_epochs`. Returns `None` when the
    /// baseline never reaches it.
    pub fn adaptation_speedup(&self, fuse_epochs: usize) -> Option<f32> {
        let target = self.fuse.new_error_at(fuse_epochs).average_cm();
        let baseline_epochs = self.baseline.epochs_to_reach_cm(target)?;
        Some(baseline_epochs as f32 / fuse_epochs.max(1) as f32)
    }
}

/// Intermediate artefacts shared between the two scopes (so the Table 2
/// harness does not have to synthesise and train everything twice).
pub struct AdaptationContext {
    /// Encoded training data (offline, leave-one-out).
    pub train: EncodedDataset,
    /// Encoded original-data evaluation set (capped test portion of the
    /// training distribution).
    pub original_eval: EncodedDataset,
    /// Encoded online fine-tuning frames.
    pub finetune: EncodedDataset,
    /// Encoded online evaluation frames.
    pub new_eval: EncodedDataset,
    /// Baseline model after offline supervised training.
    pub baseline_model: fuse_nn::Sequential,
    /// FUSE model after offline meta-training.
    pub fuse_model: fuse_nn::Sequential,
}

/// Prepares the datasets and offline-trained models of the §4.3 experiments.
///
/// # Errors
///
/// Propagates dataset, training and evaluation errors.
pub fn prepare(profile: &ExperimentProfile) -> Result<AdaptationContext> {
    profile.validate()?;
    let dataset = MarsSynthesizer::new(profile.synthesis.clone()).generate()?;
    let loo = LeaveOneOutSplit::paper_default();
    let (offline, online) = loo.apply(&dataset)?;

    // Offline data: per-movement split of the leave-one-out training data,
    // mirroring §4.1. The test portion doubles as the "original data"
    // evaluation set for the forgetting curves.
    let offline_split = per_movement_split(&offline, SplitRatios::default_60_20_20())?;
    let original_eval_raw = cap_frames(&offline_split.test, profile.original_eval_cap);

    let fusion = FrameFusion::default(); // FUSE pre-processing: fuse 3 frames.
    let builder = FeatureMapBuilder::default();
    let train = encode_dataset(&offline_split.train, &fusion, &builder)?;
    let normalizer = train.normalizer().clone();
    let original_eval =
        encode_dataset_with_normalizer(&original_eval_raw, &fusion, &builder, normalizer.clone())?;

    // Online data: the held-out user performing the held-out movement.
    let (finetune_raw, eval_raw) = loo.split_online(&online, profile.finetune_frames)?;
    let finetune =
        encode_dataset_with_normalizer(&finetune_raw, &fusion, &builder, normalizer.clone())?;
    let new_eval = encode_dataset_with_normalizer(&eval_raw, &fusion, &builder, normalizer)?;

    // Offline training of the two models. Both share the architecture and the
    // pre-processing; only the training procedure differs (§4.1).
    let baseline_model = {
        let model = build_mars_cnn(&profile.model, profile.seed)?;
        let mut trainer = Trainer::new(model, profile.trainer)?;
        trainer.fit(&train, None)?;
        trainer.into_model()
    };
    let fuse_model = {
        let model = build_mars_cnn(&profile.model, profile.seed.wrapping_add(1))?;
        let mut trainer = MetaTrainer::new(model, profile.meta)?;
        trainer.train(&train)?;
        trainer.into_model()
    };

    Ok(AdaptationContext { train, original_eval, finetune, new_eval, baseline_model, fuse_model })
}

/// Runs the online fine-tuning phase for one scope on an already prepared
/// context (cloning the offline-trained models so the context can be reused
/// for the other scope).
///
/// # Errors
///
/// Propagates fine-tuning and evaluation errors.
pub fn run_scope(
    context: &AdaptationContext,
    profile: &ExperimentProfile,
    scope: FineTuneScope,
) -> Result<AdaptationResult> {
    let config = profile.finetune_config(scope);

    let mut baseline_model = clone_model(&context.baseline_model, &profile.model)?;
    let baseline = fine_tune(
        &mut baseline_model,
        &context.finetune,
        &context.new_eval,
        &context.original_eval,
        &config,
    )?;

    let mut fuse_model = clone_model(&context.fuse_model, &profile.model)?;
    let fuse = fine_tune(
        &mut fuse_model,
        &context.finetune,
        &context.new_eval,
        &context.original_eval,
        &config,
    )?;

    let intersection = intersection_epoch(&baseline, &fuse);
    Ok(AdaptationResult {
        scope,
        baseline,
        fuse,
        intersection,
        finetune_frames: context.finetune.len(),
        evaluation_frames: context.new_eval.len(),
    })
}

/// Runs the full adaptation experiment (prepare + one scope).
///
/// # Errors
///
/// Propagates dataset, training, fine-tuning and evaluation errors.
pub fn run(profile: &ExperimentProfile, scope: FineTuneScope) -> Result<AdaptationResult> {
    let context = prepare(profile)?;
    run_scope(&context, profile, scope)
}

fn cap_frames(dataset: &Dataset, cap: usize) -> Dataset {
    if dataset.len() <= cap {
        return dataset.clone();
    }
    // Keep an even spread across sequences by taking every n-th frame.
    let stride = dataset.len().div_ceil(cap);
    Dataset::from_frames(
        dataset
            .frames()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, f)| f.clone())
            .collect(),
    )
}

fn clone_model(
    source: &fuse_nn::Sequential,
    config: &crate::model::ModelConfig,
) -> Result<fuse_nn::Sequential> {
    let mut model = build_mars_cnn(config, 0)?;
    if model.param_len() != source.param_len() {
        return Err(FuseError::InvalidConfig(
            "model configuration does not match the trained model".into(),
        ));
    }
    model.set_flat_params(&source.flat_params())?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PoseError;
    use fuse_nn::AxisMae;

    fn mk(cm: f32) -> PoseError {
        PoseError { meters: AxisMae { x: cm / 100.0, y: cm / 100.0, z: cm / 100.0 } }
    }

    fn synthetic_result() -> AdaptationResult {
        AdaptationResult {
            scope: FineTuneScope::AllLayers,
            baseline: FineTuneResult {
                new_data_error: vec![mk(9.0), mk(8.5), mk(8.0), mk(7.0), mk(6.2), mk(5.9)],
                original_data_error: vec![mk(6.7), mk(7.0), mk(7.8), mk(8.5), mk(9.5), mk(10.6)],
                train_loss: vec![0.1; 5],
            },
            fuse: FineTuneResult {
                new_data_error: vec![mk(12.4), mk(8.0), mk(6.8), mk(6.3), mk(6.1), mk(6.0)],
                original_data_error: vec![mk(12.0), mk(9.5), mk(8.0), mk(7.6), mk(7.6), mk(7.6)],
                train_loss: vec![0.1; 5],
            },
            intersection: Some(5),
            finetune_frames: 200,
            evaluation_frames: 549,
        }
    }

    #[test]
    fn series_rendering_contains_all_columns() {
        let result = synthetic_result();
        let text = result.render_series("Figure 3");
        assert!(text.contains("Baseline new (cm)"));
        assert!(text.contains("FUSE new (cm)"));
        assert!(text.contains("Intersection epoch"));
        assert!(text.lines().count() > 6);
    }

    #[test]
    fn adaptation_speedup_matches_hand_computation() {
        let result = synthetic_result();
        // FUSE reaches 6.1 cm at epoch 4; the baseline first reaches <= 6.1 cm
        // at epoch 5, so the speed-up is 5/4.
        let speedup = result.adaptation_speedup(4).unwrap();
        assert!((speedup - 1.25).abs() < 1e-5);
        // With an unreachable target the speed-up is None.
        let mut unreachable = synthetic_result();
        unreachable.fuse.new_data_error = vec![mk(0.5); 6];
        assert!(unreachable.adaptation_speedup(4).is_none());
    }

    #[test]
    fn cap_frames_subsamples_evenly() {
        use fuse_dataset::{MarsSynthesizer, SynthesisConfig};
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let capped = cap_frames(&dataset, 20);
        assert!(capped.len() <= 30);
        assert!(capped.len() >= 15);
        let same = cap_frames(&dataset, dataset.len() + 10);
        assert_eq!(same.len(), dataset.len());
    }

    #[test]
    fn csv_export_writes_one_row_per_epoch() {
        let result = synthetic_result();
        let path = result.write_csv("unit_test_adaptation").unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 1 + 6);
        std::fs::remove_file(path).ok();
    }

    // The end-to-end prepare/run path is covered by the integration tests
    // (tests/adaptation.rs) with a reduced profile, and by the benches.
}
