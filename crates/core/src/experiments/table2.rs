//! Table 2: MAE comparison between the baseline and FUSE at 5 epochs, the
//! intersection epoch, and the final (50-epoch) point, for both fine-tuning
//! scopes.

use serde::{Deserialize, Serialize};

use crate::experiments::adaptation::{self, AdaptationResult};
use crate::experiments::profile::ExperimentProfile;
use crate::experiments::report;
use crate::finetune::FineTuneScope;
use crate::Result;

/// One cell group of Table 2: original/new MAE for baseline and FUSE at a
/// given checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Table2Cell {
    /// Baseline MAE on the original data (cm).
    pub baseline_original_cm: f32,
    /// FUSE MAE on the original data (cm).
    pub fuse_original_cm: f32,
    /// Baseline MAE on the new data (cm).
    pub baseline_new_cm: f32,
    /// FUSE MAE on the new data (cm).
    pub fuse_new_cm: f32,
}

/// One row block of Table 2 (a checkpoint: 5 epochs, intersection, final).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Checkpoint label ("5 epochs", "Intersection", "50 epochs").
    pub checkpoint: String,
    /// Values for the all-layers fine-tuning scope.
    pub all_layers: Table2Cell,
    /// Values for the last-layer fine-tuning scope.
    pub last_layer: Table2Cell,
}

/// Result of the Table 2 experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table2Result {
    /// Rows at the three checkpoints.
    pub rows: Vec<Table2Row>,
    /// Intersection epoch for the all-layers scope (26 in the paper).
    pub intersection_all_layers: Option<usize>,
    /// Intersection epoch for the last-layer scope (16 in the paper).
    pub intersection_last_layer: Option<usize>,
}

impl Table2Result {
    /// Builds the table from the two adaptation results.
    pub fn from_adaptations(all_layers: &AdaptationResult, last_layer: &AdaptationResult) -> Self {
        let final_epoch_all = all_layers.baseline.epochs();
        let final_epoch_last = last_layer.baseline.epochs();
        let cell = |result: &AdaptationResult, epoch: usize| Table2Cell {
            baseline_original_cm: result.baseline.original_error_at(epoch).average_cm(),
            fuse_original_cm: result.fuse.original_error_at(epoch).average_cm(),
            baseline_new_cm: result.baseline.new_error_at(epoch).average_cm(),
            fuse_new_cm: result.fuse.new_error_at(epoch).average_cm(),
        };
        let intersection_all = all_layers.intersection.unwrap_or(final_epoch_all);
        let intersection_last = last_layer.intersection.unwrap_or(final_epoch_last);
        Table2Result {
            rows: vec![
                Table2Row {
                    checkpoint: "5 epochs".into(),
                    all_layers: cell(all_layers, 5),
                    last_layer: cell(last_layer, 5),
                },
                Table2Row {
                    checkpoint: "Intersection".into(),
                    all_layers: cell(all_layers, intersection_all),
                    last_layer: cell(last_layer, intersection_last),
                },
                Table2Row {
                    checkpoint: format!("{final_epoch_all} epochs"),
                    all_layers: cell(all_layers, final_epoch_all),
                    last_layer: cell(last_layer, final_epoch_last),
                },
            ],
            intersection_all_layers: all_layers.intersection,
            intersection_last_layer: last_layer.intersection,
        }
    }

    /// Renders the result in the layout of Table 2.
    pub fn render_table(&self) -> String {
        let mut rows = Vec::new();
        for row in &self.rows {
            rows.push(vec![
                row.checkpoint.clone(),
                "Original".into(),
                format!("{:.1}", row.all_layers.baseline_original_cm),
                format!("{:.1}", row.all_layers.fuse_original_cm),
                format!("{:.1}", row.last_layer.baseline_original_cm),
                format!("{:.1}", row.last_layer.fuse_original_cm),
            ]);
            rows.push(vec![
                String::new(),
                "New".into(),
                format!("{:.1}", row.all_layers.baseline_new_cm),
                format!("{:.1}", row.all_layers.fuse_new_cm),
                format!("{:.1}", row.last_layer.baseline_new_cm),
                format!("{:.1}", row.last_layer.fuse_new_cm),
            ]);
        }
        let mut out = report::format_table(
            "Table 2: MAE comparison between baseline and FUSE (all layers / last layer)",
            &["Checkpoint", "Data", "AL baseline", "AL FUSE", "LL baseline", "LL FUSE"],
            &rows,
        );
        out.push_str(&format!(
            "Intersection epochs: all layers = {:?}, last layer = {:?}\n",
            self.intersection_all_layers, self.intersection_last_layer
        ));
        out
    }

    /// Writes the table to `target/experiment-results/table2.csv`.
    ///
    /// # Errors
    ///
    /// Returns an error when the CSV cannot be written.
    pub fn write_csv(&self) -> Result<std::path::PathBuf> {
        let mut rows = Vec::new();
        for row in &self.rows {
            for (data, al_b, al_f, ll_b, ll_f) in [
                (
                    "original",
                    row.all_layers.baseline_original_cm,
                    row.all_layers.fuse_original_cm,
                    row.last_layer.baseline_original_cm,
                    row.last_layer.fuse_original_cm,
                ),
                (
                    "new",
                    row.all_layers.baseline_new_cm,
                    row.all_layers.fuse_new_cm,
                    row.last_layer.baseline_new_cm,
                    row.last_layer.fuse_new_cm,
                ),
            ] {
                rows.push(vec![
                    row.checkpoint.clone(),
                    data.to_string(),
                    format!("{al_b:.4}"),
                    format!("{al_f:.4}"),
                    format!("{ll_b:.4}"),
                    format!("{ll_f:.4}"),
                ]);
            }
        }
        report::write_csv(
            "table2",
            &[
                "checkpoint",
                "data",
                "all_layers_baseline_cm",
                "all_layers_fuse_cm",
                "last_layer_baseline_cm",
                "last_layer_fuse_cm",
            ],
            &rows,
        )
    }
}

/// Runs the full Table 2 experiment: prepares the adaptation context once and
/// fine-tunes under both scopes.
///
/// # Errors
///
/// Propagates dataset, training and evaluation errors.
pub fn run(
    profile: &ExperimentProfile,
) -> Result<(Table2Result, AdaptationResult, AdaptationResult)> {
    let context = adaptation::prepare(profile)?;
    let all_layers = adaptation::run_scope(&context, profile, FineTuneScope::AllLayers)?;
    let last_layer = adaptation::run_scope(&context, profile, FineTuneScope::LastLayer)?;
    let table = Table2Result::from_adaptations(&all_layers, &last_layer);
    Ok((table, all_layers, last_layer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PoseError;
    use crate::finetune::FineTuneResult;
    use fuse_nn::AxisMae;

    fn mk(cm: f32) -> PoseError {
        PoseError { meters: AxisMae { x: cm / 100.0, y: cm / 100.0, z: cm / 100.0 } }
    }

    fn curve(values: &[f32]) -> Vec<PoseError> {
        values.iter().map(|&v| mk(v)).collect()
    }

    fn adaptation(scope: FineTuneScope) -> AdaptationResult {
        AdaptationResult {
            scope,
            baseline: FineTuneResult {
                new_data_error: curve(&[9.0, 8.0, 7.0, 6.0, 5.0, 4.6, 4.0]),
                original_data_error: curve(&[6.4, 7.0, 8.0, 9.0, 10.0, 10.6, 11.0]),
                train_loss: vec![0.1; 6],
            },
            fuse: FineTuneResult {
                new_data_error: curve(&[12.4, 8.0, 7.0, 6.5, 6.2, 6.0, 4.3]),
                original_data_error: curve(&[12.0, 9.0, 8.0, 7.8, 7.7, 7.6, 6.6]),
                train_loss: vec![0.1; 6],
            },
            intersection: Some(5),
            finetune_frames: 200,
            evaluation_frames: 500,
        }
    }

    #[test]
    fn table_construction_extracts_checkpoints() {
        let all = adaptation(FineTuneScope::AllLayers);
        let last = adaptation(FineTuneScope::LastLayer);
        let table = Table2Result::from_adaptations(&all, &last);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0].checkpoint, "5 epochs");
        assert!((table.rows[0].all_layers.baseline_new_cm - 4.6).abs() < 1e-4);
        assert!((table.rows[0].all_layers.fuse_new_cm - 6.0).abs() < 1e-4);
        // Intersection row uses epoch 5 values too (intersection == 5 here).
        assert_eq!(table.intersection_all_layers, Some(5));
        // Final row uses the last recorded epoch (6).
        assert!((table.rows[2].all_layers.baseline_new_cm - 4.0).abs() < 1e-4);
        let text = table.render_table();
        assert!(text.contains("Intersection"));
        assert!(text.contains("AL FUSE"));
        table.write_csv().unwrap();
    }

    #[test]
    fn missing_intersection_falls_back_to_final_epoch() {
        let mut all = adaptation(FineTuneScope::AllLayers);
        all.intersection = None;
        let last = adaptation(FineTuneScope::LastLayer);
        let table = Table2Result::from_adaptations(&all, &last);
        assert_eq!(table.intersection_all_layers, None);
        assert!((table.rows[1].all_layers.baseline_new_cm - 4.0).abs() < 1e-4);
    }
}
