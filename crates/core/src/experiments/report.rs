//! Rendering and persistence of experiment results.

use std::fs;
use std::path::PathBuf;

use crate::error::FuseError;
use crate::Result;

/// Renders a plain-text table with a header row, suitable for printing from
/// the benchmark harness.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
        .collect();
    out.push_str(&header_line.join(" | "));
    out.push('\n');
    out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

/// Directory where experiment CSVs are written
/// (`target/experiment-results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(base).join("experiment-results")
}

/// Writes rows to `target/experiment-results/<name>.csv` and returns the path.
///
/// # Errors
///
/// Returns [`FuseError::Experiment`] when the directory or file cannot be
/// written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)
        .map_err(|e| FuseError::Experiment(format!("create {}: {e}", dir.display())))?;
    let path = dir.join(format!("{name}.csv"));
    let mut contents = String::new();
    contents.push_str(&headers.join(","));
    contents.push('\n');
    for row in rows {
        contents.push_str(&row.join(","));
        contents.push('\n');
    }
    fs::write(&path, contents)
        .map_err(|e| FuseError::Experiment(format!("write {}: {e}", path.display())))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns_columns() {
        let table = format_table(
            "Table X",
            &["setting", "value"],
            &[vec!["single".into(), "5.5".into()], vec!["fuse 3 frames".into(), "3.6".into()]],
        );
        assert!(table.contains("Table X"));
        assert!(table.contains("setting"));
        assert!(table.contains("fuse 3 frames | 3.6"));
        // All data lines have the same column separator position.
        let lines: Vec<&str> = table.lines().skip(1).collect();
        let sep_positions: Vec<Option<usize>> =
            lines.iter().map(|l| l.find('|').or(l.find('+'))).collect();
        assert!(sep_positions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn csv_round_trip() {
        let path = write_csv(
            "unit_test_report",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_rows_produce_header_only_output() {
        let table = format_table("T", &["x"], &[]);
        assert!(table.contains('x'));
        let path = write_csv("unit_test_empty", &["x"], &[]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n");
        std::fs::remove_file(path).ok();
    }
}
