//! Figure 2: information content of single-frame vs multi-frame point clouds.
//!
//! Figure 2 of the paper is a qualitative visualisation (an RGB frame, a
//! single-frame point cloud, an RGB residual frame and the proposed
//! multi-frame point cloud). The quantitative claim behind it — a video
//! frame carries ~217k pixels while a single mmWave frame carries only ~64
//! points (~192 spatial values), and fusing frames multiplies the usable
//! points — is what this experiment measures: per-fusion-setting point
//! counts, feature-map slot occupancy and the spatial coverage of the points.

use fuse_dataset::{FeatureMapBuilder, FrameFusion, MarsSynthesizer};
use fuse_radar::RadarPoint;
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::experiments::profile::ExperimentProfile;
use crate::experiments::report;
use crate::Result;

/// Statistics for one fusion setting.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DensityStats {
    /// Number of frames fused per sample.
    pub fused_frames: usize,
    /// Mean number of points available per sample.
    pub mean_points: f32,
    /// Mean fraction of the 64 feature-map slots that are filled.
    pub mean_occupancy: f32,
    /// Mean bounding-box volume of the points (m³) — a proxy for how much of
    /// the body the sample covers.
    pub mean_coverage_m3: f32,
}

/// Result of the Figure 2 experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Figure2Result {
    /// Statistics per fusion setting (1, 3, 5 frames).
    pub settings: Vec<DensityStats>,
    /// Data points of the comparison the paper's §3.2 makes: a 512×424 video
    /// frame carries this many pixels...
    pub video_frame_pixels: usize,
    /// ...while a single mmWave frame carries this many scalar values.
    pub single_frame_values: f32,
}

impl Figure2Result {
    /// Renders the per-setting statistics as a table.
    pub fn render_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .settings
            .iter()
            .map(|s| {
                vec![
                    format!("{} frame(s)", s.fused_frames),
                    format!("{:.1}", s.mean_points),
                    format!("{:.0} %", s.mean_occupancy * 100.0),
                    format!("{:.3}", s.mean_coverage_m3),
                ]
            })
            .collect();
        let mut out = report::format_table(
            "Figure 2 (quantified): point-cloud information content per fusion setting",
            &["Setting", "Mean points", "Slot occupancy", "Coverage (m^3)"],
            &rows,
        );
        out.push_str(&format!(
            "Reference: one 512x424 video frame = {} pixels; one mmWave frame ~= {:.0} scalar values\n",
            self.video_frame_pixels,
            self.single_frame_values
        ));
        out
    }

    /// Writes the statistics to `target/experiment-results/figure2.csv`.
    ///
    /// # Errors
    ///
    /// Returns an error when the CSV cannot be written.
    pub fn write_csv(&self) -> Result<std::path::PathBuf> {
        let rows: Vec<Vec<String>> = self
            .settings
            .iter()
            .map(|s| {
                vec![
                    s.fused_frames.to_string(),
                    format!("{:.2}", s.mean_points),
                    format!("{:.4}", s.mean_occupancy),
                    format!("{:.4}", s.mean_coverage_m3),
                ]
            })
            .collect();
        report::write_csv(
            "figure2",
            &["fused_frames", "mean_points", "mean_occupancy", "mean_coverage_m3"],
            &rows,
        )
    }
}

fn bounding_volume(points: &[RadarPoint]) -> f32 {
    if points.is_empty() {
        return 0.0;
    }
    let mut min = [f32::INFINITY; 3];
    let mut max = [f32::NEG_INFINITY; 3];
    for p in points {
        let v = [p.x, p.y, p.z];
        for a in 0..3 {
            min[a] = min[a].min(v[a]);
            max[a] = max[a].max(v[a]);
        }
    }
    (max[0] - min[0]).max(0.0) * (max[1] - min[1]).max(0.0) * (max[2] - min[2]).max(0.0)
}

/// Runs the Figure 2 experiment at the given profile scale.
///
/// # Errors
///
/// Propagates dataset errors.
pub fn run(profile: &ExperimentProfile) -> Result<Figure2Result> {
    let mut synthesis = profile.synthesis.clone();
    // The density statistics stabilise with a few hundred frames; cap the
    // synthesis so this experiment stays cheap even in the full profile.
    synthesis.frames_per_sequence = synthesis.frames_per_sequence.min(60);
    let dataset = MarsSynthesizer::new(synthesis).generate()?;
    if dataset.is_empty() {
        return Err(FuseError::Experiment("figure 2 dataset is empty".into()));
    }
    let builder = FeatureMapBuilder::default();
    let capacity = builder.capacity() as f32;

    let mut result = Figure2Result {
        settings: Vec::new(),
        video_frame_pixels: 512 * 424,
        single_frame_values: 0.0,
    };

    for frames in [1usize, 3, 5] {
        let fusion = FrameFusion::from_frame_count(frames);
        let mut total_points = 0.0f64;
        let mut total_occupancy = 0.0f64;
        let mut total_volume = 0.0f64;
        let mut samples = 0usize;
        for subject in dataset.subjects() {
            for movement in dataset.movements() {
                let sequence = dataset.sequence(subject, movement);
                let clouds: Vec<&fuse_radar::PointCloudFrame> =
                    sequence.iter().map(|f| &f.cloud).collect();
                for k in 0..clouds.len() {
                    let fused = fusion.fused_points(&clouds, k);
                    total_points += fused.len() as f64;
                    total_occupancy += (fused.len() as f32 / capacity).min(1.0) as f64;
                    total_volume += bounding_volume(&fused) as f64;
                    samples += 1;
                }
            }
        }
        let stats = DensityStats {
            fused_frames: frames,
            mean_points: (total_points / samples as f64) as f32,
            mean_occupancy: (total_occupancy / samples as f64) as f32,
            mean_coverage_m3: (total_volume / samples as f64) as f32,
        };
        if frames == 1 {
            // Five features per point, matching the paper's "192 data points"
            // arithmetic for 64 3-D points.
            result.single_frame_values = stats.mean_points * 3.0;
        }
        result.settings.push(stats);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_volume_of_known_points() {
        let points = vec![
            RadarPoint::new(0.0, 0.0, 0.0, 0.0, 1.0),
            RadarPoint::new(1.0, 2.0, 3.0, 0.0, 1.0),
        ];
        assert!((bounding_volume(&points) - 6.0).abs() < 1e-6);
        assert_eq!(bounding_volume(&[]), 0.0);
    }

    #[test]
    fn figure2_runs_on_a_tiny_profile_and_shows_fusion_gain() {
        let mut profile = ExperimentProfile::bench();
        profile.synthesis.subjects = vec![0];
        profile.synthesis.movements = vec![fuse_skeleton::Movement::Squat];
        profile.synthesis.frames_per_sequence = 20;
        let result = run(&profile).unwrap();
        assert_eq!(result.settings.len(), 3);
        // More fused frames → more points and at least as much occupancy.
        assert!(result.settings[1].mean_points > 2.0 * result.settings[0].mean_points);
        assert!(result.settings[2].mean_points > result.settings[1].mean_points);
        assert!(result.settings[1].mean_occupancy >= result.settings[0].mean_occupancy);
        // The video/mmWave information gap of §3.2 is orders of magnitude.
        assert!(result.video_frame_pixels as f32 > 500.0 * result.single_frame_values);
        let table = result.render_table();
        assert!(table.contains("3 frame(s)"));
        result.write_csv().unwrap();
    }
}
