//! Experiment scale profiles.

use fuse_dataset::SynthesisConfig;
use serde::{Deserialize, Serialize};

use crate::baseline::TrainerConfig;
use crate::error::FuseError;
use crate::finetune::{FineTuneConfig, FineTuneScope};
use crate::meta::MetaConfig;
use crate::model::ModelConfig;
use crate::Result;

/// A complete set of scale parameters for the experiment harness.
///
/// The paper's experiments use 40k frames, 150 supervised epochs and 20,000
/// meta-iterations on an RTX 3090; on a laptop CPU that budget is days of
/// compute. The profiles keep every pipeline stage identical and scale only
/// the sizes, so the qualitative shape of each result (who wins, where the
/// crossover happens) is preserved:
///
/// * `bench` — minutes; used by `cargo bench` and CI.
/// * `quick` — tens of minutes; the default for manual runs.
/// * `full`  — paper scale; opt in with `FUSE_FULL_EXPERIMENT=1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentProfile {
    /// Profile name ("bench", "quick" or "full").
    pub name: String,
    /// Dataset synthesis parameters.
    pub synthesis: SynthesisConfig,
    /// Supervised training configuration for the baseline model.
    pub trainer: TrainerConfig,
    /// Meta-training configuration for the FUSE model.
    pub meta: MetaConfig,
    /// Fine-tuning epochs used by the adaptation experiments.
    pub finetune_epochs: usize,
    /// Number of online frames reserved for fine-tuning (the paper uses 200).
    pub finetune_frames: usize,
    /// Fine-tuning learning rate.
    pub finetune_lr: f32,
    /// Cap on the number of original-data frames used for the forgetting
    /// evaluation after every fine-tuning epoch (keeps the per-epoch
    /// evaluation cost bounded; `usize::MAX` means no cap).
    pub original_eval_cap: usize,
    /// CNN architecture.
    pub model: ModelConfig,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentProfile {
    /// Laptop/CI scale: ~2.4k frames, roughly a minute or two of compute per
    /// experiment harness.
    pub fn bench() -> Self {
        let mut synthesis = SynthesisConfig::quick();
        synthesis.frames_per_sequence = 60;
        ExperimentProfile {
            name: "bench".into(),
            synthesis,
            trainer: TrainerConfig { epochs: 20, batch_size: 64, learning_rate: 1e-3, seed: 0 },
            meta: MetaConfig::quick(80),
            finetune_epochs: 30,
            finetune_frames: 20,
            finetune_lr: 1e-3,
            original_eval_cap: 200,
            model: ModelConfig::default(),
            seed: 2022,
        }
    }

    /// Larger laptop scale: ~4.8k frames, tens of minutes.
    pub fn quick() -> Self {
        ExperimentProfile {
            name: "quick".into(),
            synthesis: SynthesisConfig::quick(),
            trainer: TrainerConfig { epochs: 25, batch_size: 128, learning_rate: 1e-3, seed: 0 },
            meta: MetaConfig::quick(200),
            finetune_epochs: 50,
            finetune_frames: 50,
            finetune_lr: 1e-3,
            original_eval_cap: 500,
            model: ModelConfig::default(),
            seed: 2022,
        }
    }

    /// Paper scale (≈40k frames, 150 epochs, 20,000 meta-iterations).
    pub fn full() -> Self {
        ExperimentProfile {
            name: "full".into(),
            synthesis: SynthesisConfig::full(),
            trainer: TrainerConfig::default(),
            meta: MetaConfig::paper(),
            finetune_epochs: 50,
            finetune_frames: 200,
            finetune_lr: 1e-3,
            original_eval_cap: usize::MAX,
            model: ModelConfig::default(),
            seed: 2022,
        }
    }

    /// Selects a profile from the environment: `FUSE_FULL_EXPERIMENT=1` picks
    /// `full`, `FUSE_QUICK_EXPERIMENT=1` picks `quick`, anything else picks
    /// `bench`.
    pub fn from_env() -> Self {
        let is_set = |name: &str| {
            std::env::var(name).map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
        };
        if is_set("FUSE_FULL_EXPERIMENT") {
            ExperimentProfile::full()
        } else if is_set("FUSE_QUICK_EXPERIMENT") {
            ExperimentProfile::quick()
        } else {
            ExperimentProfile::bench()
        }
    }

    /// Fine-tuning configuration derived from the profile.
    pub fn finetune_config(&self, scope: FineTuneScope) -> FineTuneConfig {
        FineTuneConfig {
            epochs: self.finetune_epochs,
            batch_size: 32.min(self.finetune_frames.max(1)),
            learning_rate: self.finetune_lr,
            scope,
            seed: self.seed,
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] when any sub-configuration is
    /// inconsistent.
    pub fn validate(&self) -> Result<()> {
        self.synthesis.validate().map_err(FuseError::from)?;
        self.trainer.validate()?;
        self.meta.validate()?;
        self.model.validate()?;
        if self.finetune_epochs == 0 || self.finetune_frames == 0 {
            return Err(FuseError::InvalidConfig("fine-tuning sizes must be nonzero".into()));
        }
        if self.finetune_frames >= self.synthesis.frames_per_sequence {
            return Err(FuseError::InvalidConfig(format!(
                "finetune_frames ({}) must be smaller than frames_per_sequence ({}) so that evaluation frames remain",
                self.finetune_frames, self.synthesis.frames_per_sequence
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_profiles_are_valid() {
        ExperimentProfile::bench().validate().unwrap();
        ExperimentProfile::quick().validate().unwrap();
        ExperimentProfile::full().validate().unwrap();
    }

    #[test]
    fn profiles_scale_monotonically() {
        let bench = ExperimentProfile::bench();
        let quick = ExperimentProfile::quick();
        let full = ExperimentProfile::full();
        assert!(bench.synthesis.total_frames() < quick.synthesis.total_frames());
        assert!(quick.synthesis.total_frames() < full.synthesis.total_frames());
        assert!(bench.trainer.epochs < full.trainer.epochs);
        assert!(bench.meta.meta_iterations < full.meta.meta_iterations);
        assert_eq!(full.finetune_frames, 200);
    }

    #[test]
    fn finetune_config_inherits_scope_and_epochs() {
        let profile = ExperimentProfile::bench();
        let cfg = profile.finetune_config(FineTuneScope::LastLayer);
        assert_eq!(cfg.scope, FineTuneScope::LastLayer);
        assert_eq!(cfg.epochs, profile.finetune_epochs);
        assert!(cfg.batch_size <= profile.finetune_frames);
    }

    #[test]
    fn validation_catches_inconsistent_finetune_frames() {
        let mut profile = ExperimentProfile::bench();
        profile.finetune_frames = profile.synthesis.frames_per_sequence;
        assert!(profile.validate().is_err());
    }

    #[test]
    fn from_env_defaults_to_bench() {
        // The test environment does not set the profile variables.
        if std::env::var("FUSE_FULL_EXPERIMENT").is_err()
            && std::env::var("FUSE_QUICK_EXPERIMENT").is_err()
        {
            assert_eq!(ExperimentProfile::from_env().name, "bench");
        }
    }
}
