//! Table 1: MAE of the baseline model under different frame-fusion settings.
//!
//! The experiment of §4.2: the baseline CNN is trained three times with the
//! per-movement 60/20/20 split, changing only the pre-processing — single
//! frame, fuse three frames, fuse five frames — and the per-axis MAE on the
//! test split is reported in centimetres.

use fuse_dataset::{
    encode_dataset, encode_dataset_with_normalizer, per_movement_split, FeatureMapBuilder,
    FrameFusion, MarsSynthesizer, SplitRatios,
};
use fuse_nn::AxisMae;
use serde::{Deserialize, Serialize};

use crate::baseline::Trainer;
use crate::error::FuseError;
use crate::experiments::profile::ExperimentProfile;
use crate::experiments::report;
use crate::model::build_mars_cnn;
use crate::Result;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Fusion setting label ("Single-frame", "Fuse 3 Frames", "Fuse 5 Frames").
    pub setting: String,
    /// Number of frames fused.
    pub fused_frames: usize,
    /// Test MAE in centimetres.
    pub mae_cm: AxisMae,
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table1Result {
    /// One row per fusion setting.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Renders the result in the layout of Table 1.
    pub fn render_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    format!("{:.1}", r.mae_cm.x),
                    format!("{:.1}", r.mae_cm.y),
                    format!("{:.1}", r.mae_cm.z),
                    format!("{:.1}", r.mae_cm.average()),
                ]
            })
            .collect();
        report::format_table(
            "Table 1: MAE of the baseline model under different frame fusion settings",
            &["Setting", "X (cm)", "Y (cm)", "Z (cm)", "Average (cm)"],
            &rows,
        )
    }

    /// Writes the rows to `target/experiment-results/table1.csv`.
    ///
    /// # Errors
    ///
    /// Returns an error when the CSV cannot be written.
    pub fn write_csv(&self) -> Result<std::path::PathBuf> {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    r.fused_frames.to_string(),
                    format!("{:.3}", r.mae_cm.x),
                    format!("{:.3}", r.mae_cm.y),
                    format!("{:.3}", r.mae_cm.z),
                    format!("{:.3}", r.mae_cm.average()),
                ]
            })
            .collect();
        report::write_csv(
            "table1",
            &["setting", "fused_frames", "x_cm", "y_cm", "z_cm", "avg_cm"],
            &rows,
        )
    }

    /// Average MAE (cm) for a given fusion frame count, if present.
    pub fn average_for(&self, fused_frames: usize) -> Option<f32> {
        self.rows.iter().find(|r| r.fused_frames == fused_frames).map(|r| r.mae_cm.average())
    }
}

/// Runs the Table 1 experiment at the given profile scale.
///
/// # Errors
///
/// Propagates dataset, training and evaluation errors.
pub fn run(profile: &ExperimentProfile) -> Result<Table1Result> {
    profile.validate()?;
    let dataset = MarsSynthesizer::new(profile.synthesis.clone()).generate()?;
    let split = per_movement_split(&dataset, SplitRatios::default_60_20_20())?;
    let builder = FeatureMapBuilder::default();

    let settings: [(&str, usize); 3] =
        [("Single-frame", 1), ("Fuse 3 Frames", 3), ("Fuse 5 Frames", 5)];
    let mut result = Table1Result::default();

    for (label, frames) in settings {
        let fusion = FrameFusion::from_frame_count(frames);
        let train_enc = encode_dataset(&split.train, &fusion, &builder)?;
        let test_enc = encode_dataset_with_normalizer(
            &split.test,
            &fusion,
            &builder,
            train_enc.normalizer().clone(),
        )?;

        let model = build_mars_cnn(&profile.model, profile.seed)?;
        let mut trainer = Trainer::new(model, profile.trainer)?;
        trainer.fit(&train_enc, None)?;
        let error = trainer.evaluate(&test_enc)?;
        result.rows.push(Table1Row {
            setting: label.to_string(),
            fused_frames: frames,
            mae_cm: error.centimeters(),
        });
    }
    if result.rows.is_empty() {
        return Err(FuseError::Experiment("table 1 produced no rows".into()));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_and_lookup() {
        let result = Table1Result {
            rows: vec![
                Table1Row {
                    setting: "Single-frame".into(),
                    fused_frames: 1,
                    mae_cm: AxisMae { x: 6.4, y: 3.6, z: 6.5 },
                },
                Table1Row {
                    setting: "Fuse 3 Frames".into(),
                    fused_frames: 3,
                    mae_cm: AxisMae { x: 4.2, y: 2.5, z: 4.4 },
                },
            ],
        };
        let table = result.render_table();
        assert!(table.contains("Single-frame"));
        assert!(table.contains("Average (cm)"));
        assert!(result.average_for(3).unwrap() < result.average_for(1).unwrap());
        assert!(result.average_for(5).is_none());
    }

    // The full experiment is exercised by the integration tests and the
    // `table1_frame_fusion` bench; unit tests here stay fast.
}
