//! Runnable reproductions of the paper's evaluation section.
//!
//! Each submodule regenerates one table or figure:
//!
//! | Module | Paper reference |
//! |--------|-----------------|
//! | [`table1`] | Table 1 — MAE of the baseline model under different frame-fusion settings |
//! | [`figure2`] | Figure 2 — information content of single-frame vs multi-frame point clouds |
//! | [`adaptation`] + [`figure3`] | Figure 3 — baseline vs FUSE, fine-tuning all layers |
//! | [`adaptation`] + [`figure4`] | Figure 4 — baseline vs FUSE, fine-tuning only the last layer |
//! | [`table2`] | Table 2 — MAE at 5 epochs, the intersection epoch, and 50 epochs |
//!
//! The [`profile::ExperimentProfile`] chooses between the laptop-scale `bench`
//! profile (default), the larger `quick` profile and the paper-scale `full`
//! profile (`FUSE_FULL_EXPERIMENT=1`).

pub mod adaptation;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod profile;
pub mod report;
pub mod table1;
pub mod table2;

pub use adaptation::{AdaptationResult, AdaptationScenario};
pub use profile::ExperimentProfile;
