//! # fuse-core
//!
//! FUSE: Fast and Scalable Human Pose Estimation using mmWave Point Cloud —
//! the paper's primary contribution, built on the substrates in
//! `fuse-tensor`, `fuse-nn`, `fuse-radar`, `fuse-skeleton` and `fuse-dataset`.
//!
//! The crate provides:
//!
//! * [`model`] — the MARS baseline CNN architecture (2 conv + 2 FC layers,
//!   ~1.1 M parameters) shared by the baseline and FUSE;
//! * [`baseline`] — conventional supervised training (the comparison point in
//!   every experiment);
//! * [`task`] + [`meta`] — the meta-learning framework of §3.3 (Algorithm 1);
//! * [`finetune`] — online fine-tuning of all layers or only the last layer;
//! * [`eval`] — per-axis MAE evaluation in centimetres;
//! * [`experiments`] — runnable reproductions of Table 1, Table 2 and
//!   Figures 2–4, used by the `fuse-bench` harness and the examples.
//!
//! ```no_run
//! use fuse_core::prelude::*;
//!
//! // Synthesize a small dataset, train the baseline, and report MAE.
//! let profile = ExperimentProfile::bench();
//! let result = fuse_core::experiments::table1::run(&profile)?;
//! println!("{}", result.render_table());
//! # Ok::<(), fuse_core::FuseError>(())
//! ```

pub mod baseline;
pub mod error;
pub mod eval;
pub mod experiments;
pub mod finetune;
pub mod meta;
pub mod model;
pub mod task;

pub use baseline::{Trainer, TrainerConfig, TrainingHistory};
pub use error::FuseError;
pub use eval::{evaluate_model, per_joint_mae_cm, predict_all, PoseError};
pub use finetune::{fine_tune, FineTuneConfig, FineTuneResult, FineTuneScope};
pub use meta::{MetaConfig, MetaHistory, MetaTrainer, MetaVariant};
pub use model::{build_mars_cnn, build_pooled_mars_cnn, ModelConfig};
pub use task::TaskSampler;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FuseError>;

/// Commonly used types, re-exported for examples and benches.
pub mod prelude {
    pub use crate::baseline::{Trainer, TrainerConfig};
    pub use crate::eval::{evaluate_model, predict_all, PoseError};
    pub use crate::experiments::profile::ExperimentProfile;
    pub use crate::finetune::{fine_tune, FineTuneConfig, FineTuneScope};
    pub use crate::meta::{MetaConfig, MetaHistory, MetaTrainer, MetaVariant};
    pub use crate::model::{build_mars_cnn, build_pooled_mars_cnn, ModelConfig};
    pub use crate::FuseError;
    pub use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, LeaveOneOutSplit, MarsSynthesizer,
        SplitRatios, SynthesisConfig,
    };
    pub use fuse_nn::{AxisMae, Sequential};
}
