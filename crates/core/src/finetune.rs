//! Online fine-tuning (§3.3.3 and §4.3.2).
//!
//! After deployment, a small amount of data from an unseen user/movement
//! (`D_test`, 200 frames in the paper) is used to fine-tune the model for a
//! few epochs. The experiments fine-tune either all layers or only the last
//! fully-connected layer, and after every epoch measure the MAE on both the
//! *new* data (the unseen scenario) and the *original* data (to quantify
//! catastrophic forgetting — the solid lines of Figures 3 and 4).

use fuse_dataset::EncodedDataset;
use fuse_nn::{Adam, L1Loss, Loss, Optimizer, Sequential};
use fuse_parallel as par;
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::eval::{evaluate_model, PoseError};
use crate::Result;

/// Which parameters the fine-tuning step is allowed to update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FineTuneScope {
    /// Fine-tune every layer (Figure 3).
    AllLayers,
    /// Fine-tune only the final fully-connected layer (Figure 4).
    LastLayer,
}

impl std::fmt::Display for FineTuneScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FineTuneScope::AllLayers => f.write_str("all layers"),
            FineTuneScope::LastLayer => f.write_str("last layer"),
        }
    }
}

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Number of fine-tuning epochs (the paper plots up to 50).
    pub epochs: usize,
    /// Mini-batch size over the fine-tuning frames.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Which layers to update.
    pub scope: FineTuneScope,
    /// Seed controlling batch shuffling.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 1e-3,
            scope: FineTuneScope::AllLayers,
            seed: 0,
        }
    }
}

impl FineTuneConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] for zero counts or a non-positive
    /// learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(FuseError::InvalidConfig("epochs and batch_size must be nonzero".into()));
        }
        if self.learning_rate <= 0.0 {
            return Err(FuseError::InvalidConfig("learning_rate must be positive".into()));
        }
        Ok(())
    }
}

/// Error trajectory of one fine-tuning run.
///
/// Index 0 holds the pre-fine-tuning errors (epoch 0 of Figures 3–4); index
/// `e` holds the errors after `e` epochs of fine-tuning.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FineTuneResult {
    /// MAE on the new (unseen) data after each epoch.
    pub new_data_error: Vec<PoseError>,
    /// MAE on the original data after each epoch.
    pub original_data_error: Vec<PoseError>,
    /// Mean fine-tuning loss per epoch (length `epochs`).
    pub train_loss: Vec<f32>,
}

impl FineTuneResult {
    /// MAE on the new data after `epochs` epochs (clamped to the recorded
    /// range).
    pub fn new_error_at(&self, epochs: usize) -> PoseError {
        let idx = epochs.min(self.new_data_error.len().saturating_sub(1));
        self.new_data_error[idx]
    }

    /// MAE on the original data after `epochs` epochs (clamped to the
    /// recorded range).
    pub fn original_error_at(&self, epochs: usize) -> PoseError {
        let idx = epochs.min(self.original_data_error.len().saturating_sub(1));
        self.original_data_error[idx]
    }

    /// Number of epochs recorded (excluding the pre-fine-tuning point).
    pub fn epochs(&self) -> usize {
        self.new_data_error.len().saturating_sub(1)
    }

    /// First epoch at which the new-data MAE drops to or below `target_cm`,
    /// if it ever does. This is the quantity behind the paper's "adapts
    /// within five epochs / 4× faster" claim.
    pub fn epochs_to_reach_cm(&self, target_cm: f32) -> Option<usize> {
        self.new_data_error.iter().position(|e| e.average_cm() <= target_cm)
    }
}

/// Fine-tunes `model` in place on `finetune_data`, evaluating after every
/// epoch on the held-out `new_eval` data and on `original_eval` data.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or any dataset is
/// empty.
pub fn fine_tune(
    model: &mut Sequential,
    finetune_data: &EncodedDataset,
    new_eval: &EncodedDataset,
    original_eval: &EncodedDataset,
    config: &FineTuneConfig,
) -> Result<FineTuneResult> {
    config.validate()?;
    if finetune_data.is_empty() {
        return Err(FuseError::Experiment("fine-tuning dataset is empty".into()));
    }
    let mask = match config.scope {
        FineTuneScope::AllLayers => vec![true; model.param_len()],
        FineTuneScope::LastLayer => model.last_layer_mask(),
    };
    let loss = L1Loss;
    let mut optimizer = Adam::new(config.learning_rate, model.param_len());
    let mut result = FineTuneResult::default();
    let eval_batch = config.batch_size.max(64);

    // Epoch 0: errors before any fine-tuning.
    let (new_error, original_error) = evaluate_pair(model, new_eval, original_eval, eval_batch)?;
    result.new_data_error.push(new_error);
    result.original_data_error.push(original_error);

    for epoch in 0..config.epochs {
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let shuffle_seed = config.seed.wrapping_add(epoch as u64);
        for (inputs, labels) in finetune_data.batches(config.batch_size, shuffle_seed) {
            let pred = model.forward(&inputs, true)?;
            let (value, grad) = loss.evaluate(&pred, &labels)?;
            model.zero_grad();
            model.backward(&grad)?;
            let mut params = model.flat_params();
            let grads = model.flat_grads();
            optimizer.step_masked(&mut params, &grads, &mask);
            model.set_flat_params(&params)?;
            total += value as f64;
            batches += 1;
        }
        result.train_loss.push((total / batches.max(1) as f64) as f32);
        let (new_error, original_error) =
            evaluate_pair(model, new_eval, original_eval, eval_batch)?;
        result.new_data_error.push(new_error);
        result.original_data_error.push(original_error);
    }
    Ok(result)
}

/// Evaluates the model on the new-data and original-data sets, running the
/// two independent evaluations concurrently on the `fuse-parallel` pool.
///
/// Each side works on a private clone; eval-mode inference is a pure function
/// of (parameters, input), so the result is bit-identical to two sequential
/// [`evaluate_model`] calls.
fn evaluate_pair(
    model: &mut Sequential,
    new_eval: &EncodedDataset,
    original_eval: &EncodedDataset,
    batch_size: usize,
) -> Result<(PoseError, PoseError)> {
    let work = (new_eval.len() + original_eval.len()) * model.param_len();
    if par::parallel_beneficial(work) {
        let model = &*model;
        let mut new_result: Option<Result<PoseError>> = None;
        let mut original_result: Option<Result<PoseError>> = None;
        par::scope(|s| {
            s.spawn(|| new_result = Some(evaluate_model(&mut model.clone(), new_eval, batch_size)));
            s.spawn(|| {
                original_result =
                    Some(evaluate_model(&mut model.clone(), original_eval, batch_size));
            });
        });
        let new_error = new_result.expect("scope task completed")?;
        let original_error = original_result.expect("scope task completed")?;
        Ok((new_error, original_error))
    } else {
        Ok((
            evaluate_model(model, new_eval, batch_size)?,
            evaluate_model(model, original_eval, batch_size)?,
        ))
    }
}

/// Finds the "intersection" epoch of Table 2: the first epoch at which the
/// baseline's new-data MAE becomes at most the FUSE model's new-data MAE at
/// the same epoch. Returns `None` when the curves never cross within the
/// recorded range.
pub fn intersection_epoch(baseline: &FineTuneResult, fuse: &FineTuneResult) -> Option<usize> {
    let n = baseline.new_data_error.len().min(fuse.new_data_error.len());
    (1..n).find(|&e| baseline.new_data_error[e].average_cm() <= fuse.new_data_error[e].average_cm())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Trainer, TrainerConfig};
    use crate::model::{build_mars_cnn, ModelConfig};
    use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
    };
    use fuse_nn::AxisMae;

    fn encoded_pair() -> (EncodedDataset, EncodedDataset) {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let original = dataset.filter(|f| f.subject_id == 0);
        let new_data = dataset.filter(|f| f.subject_id == 1);
        let builder = FeatureMapBuilder::default();
        let fusion = FrameFusion::default();
        (
            encode_dataset(&original, &fusion, &builder).unwrap(),
            encode_dataset(&new_data, &fusion, &builder).unwrap(),
        )
    }

    #[test]
    fn config_validation() {
        assert!(FineTuneConfig::default().validate().is_ok());
        assert!(FineTuneConfig { epochs: 0, ..FineTuneConfig::default() }.validate().is_err());
        assert!(FineTuneConfig { learning_rate: -1.0, ..FineTuneConfig::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn fine_tuning_improves_new_data_error() {
        let (original, new_data) = encoded_pair();
        // Pre-train briefly on the original data.
        let model = build_mars_cnn(&ModelConfig::tiny(), 1).unwrap();
        let mut trainer = Trainer::new(model, TrainerConfig::quick(5)).unwrap();
        trainer.fit(&original, None).unwrap();
        let mut model = trainer.into_model();

        let config = FineTuneConfig { epochs: 6, batch_size: 16, ..FineTuneConfig::default() };
        let result = fine_tune(&mut model, &new_data, &new_data, &original, &config).unwrap();
        assert_eq!(result.epochs(), 6);
        assert_eq!(result.train_loss.len(), 6);
        let before = result.new_data_error[0].average_cm();
        let after = result.new_data_error[6].average_cm();
        assert!(after < before, "new-data MAE did not improve: {before} -> {after}");
    }

    #[test]
    fn last_layer_scope_only_changes_the_head() {
        let (original, new_data) = encoded_pair();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 2).unwrap();
        let before = model.flat_params();
        let config = FineTuneConfig {
            epochs: 2,
            batch_size: 16,
            scope: FineTuneScope::LastLayer,
            ..FineTuneConfig::default()
        };
        fine_tune(&mut model, &new_data, &new_data, &original, &config).unwrap();
        let after = model.flat_params();
        let mask = model.last_layer_mask();
        for i in 0..before.len() {
            if !mask[i] {
                assert_eq!(before[i], after[i], "frozen parameter {i} changed");
            }
        }
        assert_ne!(before, after);
    }

    #[test]
    fn result_accessors_clamp_and_search() {
        let mk =
            |cm: f32| PoseError { meters: AxisMae { x: cm / 100.0, y: cm / 100.0, z: cm / 100.0 } };
        let result = FineTuneResult {
            new_data_error: vec![mk(12.0), mk(8.0), mk(6.0), mk(5.0)],
            original_data_error: vec![mk(7.0), mk(7.5), mk(8.0), mk(9.0)],
            train_loss: vec![0.1, 0.08, 0.06],
        };
        assert_eq!(result.epochs(), 3);
        assert!((result.new_error_at(2).average_cm() - 6.0).abs() < 1e-4);
        assert!((result.new_error_at(99).average_cm() - 5.0).abs() < 1e-4);
        assert_eq!(result.epochs_to_reach_cm(6.0), Some(2));
        assert_eq!(result.epochs_to_reach_cm(1.0), None);
    }

    #[test]
    fn intersection_epoch_detects_crossing() {
        let mk =
            |cm: f32| PoseError { meters: AxisMae { x: cm / 100.0, y: cm / 100.0, z: cm / 100.0 } };
        let baseline = FineTuneResult {
            new_data_error: vec![mk(10.0), mk(9.0), mk(7.0), mk(4.0)],
            original_data_error: vec![],
            train_loss: vec![],
        };
        let fuse = FineTuneResult {
            new_data_error: vec![mk(12.0), mk(6.0), mk(5.0), mk(4.5)],
            original_data_error: vec![],
            train_loss: vec![],
        };
        assert_eq!(intersection_epoch(&baseline, &fuse), Some(3));
        let never = FineTuneResult {
            new_data_error: vec![mk(10.0), mk(9.0), mk(8.0), mk(7.0)],
            original_data_error: vec![],
            train_loss: vec![],
        };
        assert_eq!(intersection_epoch(&never, &fuse), None);
    }

    #[test]
    fn empty_finetune_data_is_rejected() {
        let (original, new_data) = encoded_pair();
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 3).unwrap();
        let config = FineTuneConfig::default();
        // There is no public way to build an empty EncodedDataset, so check
        // validation via a zero-epoch config instead.
        let bad = FineTuneConfig { epochs: 0, ..config };
        assert!(fine_tune(&mut model, &new_data, &new_data, &original, &bad).is_err());
    }
}
