//! Meta-learning task sampling (§3.3.1).
//!
//! Definition 2 of the paper: a task `T` is a set of fused frames sampled
//! uniformly from the training data `D_train`. Each meta-training iteration
//! samples a batch of tasks; each task provides a support set (used for the
//! inner-loop update) and a query set (used to evaluate the adapted
//! parameters and drive the outer update).

use fuse_dataset::EncodedDataset;
use fuse_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::Result;

/// A sampled task: support and query tensors.
#[derive(Debug, Clone)]
pub struct Task {
    /// Support inputs `[S, C, H, W]`.
    pub support_inputs: Tensor,
    /// Support labels `[S, 57]`.
    pub support_labels: Tensor,
    /// Query inputs `[Q, C, H, W]`.
    pub query_inputs: Tensor,
    /// Query labels `[Q, 57]`.
    pub query_labels: Tensor,
}

/// Uniform task sampler over an encoded dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSampler {
    /// Number of frames in each support set.
    pub support_size: usize,
    /// Number of frames in each query set.
    pub query_size: usize,
}

impl TaskSampler {
    /// Creates a sampler with the given support/query sizes.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] when either size is zero.
    pub fn new(support_size: usize, query_size: usize) -> Result<Self> {
        if support_size == 0 || query_size == 0 {
            return Err(FuseError::InvalidConfig("support and query sizes must be nonzero".into()));
        }
        Ok(TaskSampler { support_size, query_size })
    }

    /// The paper's configuration: 1,000 frames per support task and 1,000 per
    /// query task (§4.1).
    pub fn paper_default() -> Self {
        TaskSampler { support_size: 1000, query_size: 1000 }
    }

    /// Samples one task from the training data.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty.
    pub fn sample(&self, data: &EncodedDataset, seed: u64) -> Result<Task> {
        if data.is_empty() {
            return Err(FuseError::Experiment("cannot sample tasks from an empty dataset".into()));
        }
        let support_idx = data.sample_indices(self.support_size, seed);
        let query_idx = data.sample_indices(self.query_size, seed.wrapping_add(0x5EED));
        let (support_inputs, support_labels) = data.gather(&support_idx)?;
        let (query_inputs, query_labels) = data.gather(&query_idx)?;
        Ok(Task { support_inputs, support_labels, query_inputs, query_labels })
    }

    /// Samples a batch of `count` tasks with seeds derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty.
    pub fn sample_batch(
        &self,
        data: &EncodedDataset,
        count: usize,
        seed: u64,
    ) -> Result<Vec<Task>> {
        (0..count)
            .map(|i| self.sample(data, seed.wrapping_mul(31).wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
    };

    fn encoded() -> EncodedDataset {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
    }

    #[test]
    fn sampler_rejects_zero_sizes() {
        assert!(TaskSampler::new(0, 10).is_err());
        assert!(TaskSampler::new(10, 0).is_err());
        assert_eq!(TaskSampler::paper_default().support_size, 1000);
    }

    #[test]
    fn sampled_task_has_requested_shapes() {
        let data = encoded();
        let sampler = TaskSampler::new(16, 8).unwrap();
        let task = sampler.sample(&data, 3).unwrap();
        assert_eq!(task.support_inputs.dims(), &[16, 5, 8, 8]);
        assert_eq!(task.support_labels.dims(), &[16, 57]);
        assert_eq!(task.query_inputs.dims(), &[8, 5, 8, 8]);
        assert_eq!(task.query_labels.dims(), &[8, 57]);
    }

    #[test]
    fn support_and_query_sets_differ() {
        let data = encoded();
        let sampler = TaskSampler::new(12, 12).unwrap();
        let task = sampler.sample(&data, 5).unwrap();
        assert_ne!(task.support_labels, task.query_labels);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let data = encoded();
        let sampler = TaskSampler::new(10, 10).unwrap();
        let a = sampler.sample(&data, 9).unwrap();
        let b = sampler.sample(&data, 9).unwrap();
        let c = sampler.sample(&data, 10).unwrap();
        assert_eq!(a.support_labels, b.support_labels);
        assert_ne!(a.support_labels, c.support_labels);
    }

    #[test]
    fn batch_of_tasks_are_distinct() {
        let data = encoded();
        let sampler = TaskSampler::new(8, 8).unwrap();
        let tasks = sampler.sample_batch(&data, 4, 1).unwrap();
        assert_eq!(tasks.len(), 4);
        assert_ne!(tasks[0].support_labels, tasks[1].support_labels);
    }

    #[test]
    fn oversized_tasks_resample_with_replacement() {
        let data = encoded();
        let sampler = TaskSampler::new(data.len() + 20, 4).unwrap();
        let task = sampler.sample(&data, 2).unwrap();
        assert_eq!(task.support_inputs.dims()[0], data.len() + 20);
    }
}
