//! Conventional supervised training — the baseline that FUSE is compared
//! against throughout the paper's evaluation.

use fuse_dataset::EncodedDataset;
use fuse_nn::{Adam, L1Loss, Loss, Optimizer, Sequential};
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::eval::{evaluate_model, PoseError};
use crate::Result;

/// Supervised training hyper-parameters (§4.2 uses a batch size of 128 and
/// 150 epochs with the Adam optimizer and the L1 loss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed controlling batch shuffling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig { epochs: 150, batch_size: 128, learning_rate: 1e-3, seed: 0 }
    }
}

impl TrainerConfig {
    /// A reduced configuration for the quick experiment profile and tests.
    pub fn quick(epochs: usize) -> Self {
        TrainerConfig { epochs, batch_size: 64, learning_rate: 1e-3, seed: 0 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] for zero epochs/batch size or a
    /// non-positive learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(FuseError::InvalidConfig("epochs and batch_size must be nonzero".into()));
        }
        if self.learning_rate <= 0.0 {
            return Err(FuseError::InvalidConfig("learning_rate must be positive".into()));
        }
        Ok(())
    }
}

/// Per-epoch record of a supervised training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation MAE per epoch (present only when a validation set is given).
    pub validation_error: Vec<PoseError>,
}

impl TrainingHistory {
    /// The final training loss, if any epochs were run.
    pub fn final_loss(&self) -> Option<f32> {
        self.train_loss.last().copied()
    }
}

/// Supervised trainer: Adam + L1 loss over mini-batches.
pub struct Trainer {
    model: Sequential,
    config: TrainerConfig,
    optimizer: Adam,
    loss: L1Loss,
}

impl Trainer {
    /// Creates a trainer owning the model to be trained.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn new(model: Sequential, config: TrainerConfig) -> Result<Self> {
        config.validate()?;
        let optimizer = Adam::new(config.learning_rate, model.param_len());
        Ok(Trainer { model, config, optimizer, loss: L1Loss })
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the model (e.g. for evaluation helpers).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Consumes the trainer and returns the trained model.
    pub fn into_model(self) -> Sequential {
        self.model
    }

    /// Runs a single epoch over the training data and returns the mean batch
    /// loss.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or data pipeline.
    pub fn train_epoch(&mut self, train: &EncodedDataset, epoch: usize) -> Result<f32> {
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let shuffle_seed = self.config.seed.wrapping_add(epoch as u64);
        for (inputs, labels) in train.batches(self.config.batch_size, shuffle_seed) {
            let pred = self.model.forward(&inputs, true)?;
            let (value, grad) = self.loss.evaluate(&pred, &labels)?;
            self.model.zero_grad();
            self.model.backward(&grad)?;
            let mut params = self.model.flat_params();
            let grads = self.model.flat_grads();
            self.optimizer.step(&mut params, &grads);
            self.model.set_flat_params(&params)?;
            total += value as f64;
            batches += 1;
        }
        if batches == 0 {
            return Err(FuseError::Experiment("training dataset produced no batches".into()));
        }
        Ok((total / batches as f64) as f32)
    }

    /// Trains for the configured number of epochs, optionally evaluating on a
    /// validation set after every epoch.
    ///
    /// # Errors
    ///
    /// Propagates errors from the epoch loop or evaluation.
    pub fn fit(
        &mut self,
        train: &EncodedDataset,
        validation: Option<&EncodedDataset>,
    ) -> Result<TrainingHistory> {
        let mut history = TrainingHistory::default();
        for epoch in 0..self.config.epochs {
            let loss = self.train_epoch(train, epoch)?;
            history.train_loss.push(loss);
            if let Some(val) = validation {
                let error = evaluate_model(&mut self.model, val, self.config.batch_size)?;
                history.validation_error.push(error);
            }
        }
        Ok(history)
    }

    /// Evaluates the current model on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate(&mut self, data: &EncodedDataset) -> Result<PoseError> {
        evaluate_model(&mut self.model, data, self.config.batch_size)
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("config", &self.config)
            .field("params", &self.model.param_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build_mars_cnn, ModelConfig};
    use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
    };

    fn encoded() -> EncodedDataset {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TrainerConfig::default().validate().is_ok());
        assert!(TrainerConfig { epochs: 0, ..TrainerConfig::default() }.validate().is_err());
        assert!(TrainerConfig { batch_size: 0, ..TrainerConfig::default() }.validate().is_err());
        assert!(TrainerConfig { learning_rate: 0.0, ..TrainerConfig::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn training_reduces_loss_and_error() {
        let data = encoded();
        let model = build_mars_cnn(&ModelConfig::tiny(), 11).unwrap();
        let mut trainer = Trainer::new(model, TrainerConfig::quick(8)).unwrap();
        let before = trainer.evaluate(&data).unwrap();
        let history = trainer.fit(&data, None).unwrap();
        let after = trainer.evaluate(&data).unwrap();
        assert_eq!(history.train_loss.len(), 8);
        assert!(
            history.train_loss.last().unwrap() < history.train_loss.first().unwrap(),
            "loss did not decrease: {:?}",
            history.train_loss
        );
        assert!(
            after.meters.average() < before.meters.average(),
            "MAE did not improve: before {before}, after {after}"
        );
    }

    #[test]
    fn validation_history_is_recorded() {
        let data = encoded();
        let model = build_mars_cnn(&ModelConfig::tiny(), 13).unwrap();
        let mut trainer = Trainer::new(model, TrainerConfig::quick(3)).unwrap();
        let history = trainer.fit(&data, Some(&data)).unwrap();
        assert_eq!(history.validation_error.len(), 3);
        assert!(history.final_loss().is_some());
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let data = encoded();
        let run = |seed: u64| {
            let model = build_mars_cnn(&ModelConfig::tiny(), 5).unwrap();
            let mut trainer =
                Trainer::new(model, TrainerConfig { seed, ..TrainerConfig::quick(2) }).unwrap();
            trainer.fit(&data, None).unwrap();
            trainer.into_model().flat_params()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
