//! Offline meta-training (Algorithm 1, §3.3.2).
//!
//! FUSE constructs its initial model by explicitly optimising for fast
//! adaptation: each meta-iteration samples a batch of tasks; for every task
//! the model takes an inner gradient step on the task's *support* set
//! (`θ'_i = θ − α ∇_θ L_sup(θ)`, Eq. 5) and is then evaluated on the task's
//! *query* set; the initial parameters θ are finally updated from the summed
//! query losses (Eq. 6).
//!
//! This implementation uses the first-order approximation of MAML (FOMAML):
//! the outer gradient is taken as the query-set gradient evaluated at the
//! adapted parameters θ', i.e. the Hessian-vector term of full MAML is
//! dropped. This is the standard approximation offered by the MAML-PyTorch
//! code the paper builds on and preserves the behaviour the paper reports
//! (fast adaptation, resistance to forgetting); see DESIGN.md §2.

use fuse_dataset::EncodedDataset;
use fuse_nn::{Adam, L1Loss, Loss, Optimizer, Sequential, Sgd};
use fuse_parallel as par;
use serde::{Deserialize, Serialize};

use crate::error::FuseError;
use crate::task::{Task, TaskSampler};
use crate::Result;

/// Which outer-update rule the meta-trainer uses.
///
/// `Fomaml` is the default (query-gradient at the adapted parameters);
/// `Reptile` (move θ towards the adapted parameters) is provided for the
/// ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaVariant {
    /// First-order MAML: outer gradient = ∇_θ' L_query(θ').
    Fomaml,
    /// Reptile: outer gradient = θ − θ' (after adapting on support + query).
    Reptile,
}

/// Meta-training hyper-parameters.
///
/// The paper's values (§4.1): 20,000 meta-iterations, 32 tasks per iteration,
/// support/query tasks of 1,000 frames, sample-level learning rate α = 0.1
/// and task-level meta-learning rate β = 0.001.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetaConfig {
    /// Number of meta-training iterations.
    pub meta_iterations: usize,
    /// Number of tasks sampled per iteration.
    pub tasks_per_iteration: usize,
    /// Frames per support set.
    pub support_size: usize,
    /// Frames per query set.
    pub query_size: usize,
    /// Sample-level (inner-loop) learning rate α.
    pub inner_lr: f32,
    /// Number of inner-loop gradient steps per task.
    pub inner_steps: usize,
    /// Task-level (outer-loop) meta learning rate β.
    pub meta_lr: f32,
    /// Outer-update rule.
    pub variant: MetaVariant,
    /// Seed controlling task sampling.
    pub seed: u64,
}

impl MetaConfig {
    /// The paper-scale configuration (§4.1). Only practical with
    /// `FUSE_FULL_EXPERIMENT=1` and a long time budget.
    pub fn paper() -> Self {
        MetaConfig {
            meta_iterations: 20_000,
            tasks_per_iteration: 32,
            support_size: 1000,
            query_size: 1000,
            inner_lr: 0.1,
            inner_steps: 1,
            meta_lr: 0.001,
            variant: MetaVariant::Fomaml,
            seed: 0,
        }
    }

    /// A scaled-down configuration whose behaviour (fast adaptation with few
    /// fine-tuning epochs) matches the paper at laptop scale.
    pub fn quick(meta_iterations: usize) -> Self {
        MetaConfig {
            meta_iterations,
            tasks_per_iteration: 6,
            support_size: 48,
            query_size: 48,
            inner_lr: 0.05,
            inner_steps: 1,
            meta_lr: 0.001,
            variant: MetaVariant::Fomaml,
            seed: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::InvalidConfig`] for zero counts or non-positive
    /// learning rates.
    pub fn validate(&self) -> Result<()> {
        if self.meta_iterations == 0
            || self.tasks_per_iteration == 0
            || self.support_size == 0
            || self.query_size == 0
            || self.inner_steps == 0
        {
            return Err(FuseError::InvalidConfig("meta-training counts must be nonzero".into()));
        }
        if self.inner_lr <= 0.0 || self.meta_lr <= 0.0 {
            return Err(FuseError::InvalidConfig("learning rates must be positive".into()));
        }
        Ok(())
    }
}

/// Per-iteration record of a meta-training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaHistory {
    /// Mean query loss per meta-iteration (the quantity Eq. 6 minimises).
    pub query_loss: Vec<f32>,
}

impl MetaHistory {
    /// The final query loss, if any iterations were run.
    pub fn final_loss(&self) -> Option<f32> {
        self.query_loss.last().copied()
    }
}

/// Meta-trainer implementing Algorithm 1.
pub struct MetaTrainer {
    model: Sequential,
    config: MetaConfig,
    meta_optimizer: Adam,
    loss: L1Loss,
}

impl MetaTrainer {
    /// Creates a meta-trainer owning the model whose initial parameters θ
    /// will be meta-learned.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn new(model: Sequential, config: MetaConfig) -> Result<Self> {
        config.validate()?;
        let meta_optimizer = Adam::new(config.meta_lr, model.param_len());
        Ok(MetaTrainer { model, config, meta_optimizer, loss: L1Loss })
    }

    /// The meta-training configuration.
    pub fn config(&self) -> &MetaConfig {
        &self.config
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Consumes the trainer and returns the meta-learned model.
    pub fn into_model(self) -> Sequential {
        self.model
    }

    /// Runs one meta-training iteration (lines 3–11 of Algorithm 1) and
    /// returns the mean query loss across the task batch.
    ///
    /// The per-task episodes are embarrassingly parallel given θ: each one
    /// adapts a private clone of the model, so the batch fans out across the
    /// `fuse-parallel` pool. Episode gradients are merged in task order,
    /// keeping the result bit-identical for every `FUSE_THREADS` value.
    ///
    /// # Errors
    ///
    /// Propagates sampling and shape errors.
    pub fn meta_iteration(&mut self, train: &EncodedDataset, iteration: usize) -> Result<f32> {
        let sampler = TaskSampler::new(self.config.support_size, self.config.query_size)?;
        let seed = self.config.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(iteration as u64);
        let tasks = sampler.sample_batch(train, self.config.tasks_per_iteration, seed)?;

        let theta = self.model.flat_params();
        let episodes = {
            let model = &self.model;
            let config = &self.config;
            let loss = &self.loss;
            let theta = &theta;
            par::par_map(&tasks, |_, task| run_episode(model, theta, task, config, loss))
        };

        // Ordered merge: summing episode contributions in task order pins the
        // floating-point accumulation order regardless of thread count.
        let mut outer_grad = vec![0.0f32; theta.len()];
        let mut total_query_loss = 0.0f64;
        for episode in episodes {
            let episode = episode?;
            total_query_loss += episode.query_loss;
            for (o, g) in outer_grad.iter_mut().zip(&episode.outer_grad) {
                *o += g;
            }
        }

        // Outer update of the initial parameters θ (Eq. 6), scaled by the
        // number of tasks and applied with Adam at the meta learning rate β.
        let scale = 1.0 / self.config.tasks_per_iteration as f32;
        for g in &mut outer_grad {
            *g *= scale;
        }
        let mut params = theta;
        self.meta_optimizer.step(&mut params, &outer_grad);
        self.model.set_flat_params(&params)?;

        Ok((total_query_loss / tasks.len() as f64) as f32)
    }

    /// Runs the full offline meta-training loop.
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-iteration loop.
    pub fn train(&mut self, train: &EncodedDataset) -> Result<MetaHistory> {
        let mut history = MetaHistory::default();
        for iteration in 0..self.config.meta_iterations {
            let loss = self.meta_iteration(train, iteration)?;
            history.query_loss.push(loss);
        }
        Ok(history)
    }
}

/// Result of one meta-learning episode (one task of one meta-iteration).
struct Episode {
    /// Query loss of the adapted parameters θ' (line 9 of Algorithm 1).
    query_loss: f64,
    /// This task's contribution to the outer gradient (Eq. 6).
    outer_grad: Vec<f32>,
}

/// Runs one episode on a private clone of `base`: adapt θ on the support set
/// (Eq. 5), evaluate on the query set, and return the outer-gradient
/// contribution for the configured [`MetaVariant`].
///
/// Stochastic layer state (e.g. a dropout RNG) is cloned verbatim from
/// `base` and the clone is dropped afterwards, so every episode of every
/// iteration would draw the same mask sequence. The MARS/FUSE models contain
/// no dropout; a future stochastic model must reseed per episode here.
fn run_episode(
    base: &Sequential,
    theta: &[f32],
    task: &Task,
    config: &MetaConfig,
    loss: &L1Loss,
) -> Result<Episode> {
    let mut model = base.clone();
    model.set_flat_params(theta)?;

    // Inner loop: adapt θ on the support set (Eq. 5).
    let mut inner = Sgd::new(config.inner_lr);
    for _ in 0..config.inner_steps {
        let pred = model.forward(&task.support_inputs, true)?;
        let (_, grad) = loss.evaluate(&pred, &task.support_labels)?;
        model.zero_grad();
        model.backward(&grad)?;
        let mut adapted = model.flat_params();
        inner.step(&mut adapted, &model.flat_grads());
        model.set_flat_params(&adapted)?;
    }

    // Evaluate the adapted parameters θ' on the query set (line 9).
    let pred = model.forward(&task.query_inputs, true)?;
    let (query_loss, grad) = loss.evaluate(&pred, &task.query_labels)?;

    let outer_grad = match config.variant {
        MetaVariant::Fomaml => {
            model.zero_grad();
            model.backward(&grad)?;
            model.flat_grads()
        }
        MetaVariant::Reptile => {
            // One more adaptation step on the query set, then move θ towards
            // the adapted parameters.
            model.zero_grad();
            model.backward(&grad)?;
            let mut adapted = model.flat_params();
            inner.step(&mut adapted, &model.flat_grads());
            theta.iter().zip(&adapted).map(|(&t, &a)| t - a).collect()
        }
    };
    Ok(Episode { query_loss: query_loss as f64, outer_grad })
}

impl std::fmt::Debug for MetaTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaTrainer")
            .field("config", &self.config)
            .field("params", &self.model.param_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build_mars_cnn, ModelConfig};
    use fuse_dataset::{
        encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
    };

    fn encoded() -> EncodedDataset {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
    }

    fn quick_config(iterations: usize) -> MetaConfig {
        MetaConfig {
            tasks_per_iteration: 3,
            support_size: 16,
            query_size: 16,
            ..MetaConfig::quick(iterations)
        }
    }

    #[test]
    fn config_validation() {
        assert!(MetaConfig::paper().validate().is_ok());
        assert!(MetaConfig { meta_iterations: 0, ..MetaConfig::paper() }.validate().is_err());
        assert!(MetaConfig { inner_lr: 0.0, ..MetaConfig::paper() }.validate().is_err());
        assert!(MetaConfig { inner_steps: 0, ..MetaConfig::paper() }.validate().is_err());
    }

    #[test]
    fn meta_training_reduces_query_loss() {
        let data = encoded();
        let model = build_mars_cnn(&ModelConfig::tiny(), 3).unwrap();
        let mut trainer = MetaTrainer::new(model, quick_config(25)).unwrap();
        let history = trainer.train(&data).unwrap();
        assert_eq!(history.query_loss.len(), 25);
        let first: f32 = history.query_loss[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = history.query_loss[20..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "query loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn meta_iteration_changes_parameters() {
        let data = encoded();
        let model = build_mars_cnn(&ModelConfig::tiny(), 4).unwrap();
        let mut trainer = MetaTrainer::new(model, quick_config(1)).unwrap();
        let before = trainer.model().flat_params();
        trainer.meta_iteration(&data, 0).unwrap();
        let after = trainer.model().flat_params();
        assert_ne!(before, after);
        assert_eq!(before.len(), after.len());
        assert!(after.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn meta_training_is_deterministic() {
        let data = encoded();
        let run = || {
            let model = build_mars_cnn(&ModelConfig::tiny(), 5).unwrap();
            let mut trainer = MetaTrainer::new(model, quick_config(3)).unwrap();
            trainer.train(&data).unwrap();
            trainer.into_model().flat_params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reptile_variant_also_learns() {
        let data = encoded();
        let model = build_mars_cnn(&ModelConfig::tiny(), 6).unwrap();
        let config = MetaConfig { variant: MetaVariant::Reptile, ..quick_config(15) };
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        let history = trainer.train(&data).unwrap();
        let first = history.query_loss.first().copied().unwrap();
        let last = history.final_loss().unwrap();
        assert!(last < first, "reptile query loss did not decrease: {first} -> {last}");
    }
}
