//! Remote shard endpoints: the host-side serving loop and the router-side
//! translation thread.
//!
//! A remote shard is the same state machine as a local one — the identical
//! `ShardWorker` drives the identical [`fuse_serve::ServeEngine`] — moved
//! behind a [`fuse_net`] link:
//!
//! * [`HostShard`] runs on the remote machine. It spawns a local
//!   `ShardWorker` and serves [`fuse_net::WireRequest`]s over an RPC server,
//!   translating each into the worker's command vocabulary. Because the
//!   worker code path is shared byte-for-byte with in-process shards, a
//!   host shard's responses are bit-identical to a local shard's for the
//!   same workload.
//! * `spawn_remote_shard` runs on the router's machine. It gives the
//!   router an ordinary command channel whose receiving end is a
//!   translation thread: each `Command` becomes one wire request, the
//!   response fulfils the command's embedded ack channel. The router cannot
//!   tell a remote shard from a local one.
//!
//! Exactly-once semantics over a lossy link come from the RPC layer's
//! stop-and-wait retransmission + server-side duplicate suppression
//! ([`fuse_net::rpc`]); this module never re-issues a request itself. When
//! the link dies for good, the translation thread drops every pending ack
//! and exits, which the router observes as
//! [`crate::ClusterError::ShardUnavailable`] — the same failure shape as a
//! crashed local worker.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fuse_net::message::{WireCheckpointMeta, WireCloseReport, WireFlushReport, WireGauge};
use fuse_net::{NetError, RpcClient, RpcServer, Transport, WireError, WireRequest, WireResponse};
use fuse_nn::Sequential;
use fuse_parallel::channel::{bounded, Receiver, Sender};
use fuse_serve::{ServeEngine, ServeError};

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::metrics::ShardGauge;
use crate::worker::{
    CheckpointMeta, CloseReport, Command, FlushReport, ShardResult, ShardSnapshot, ShardWorker,
    SwapSource,
};
use crate::Result;

/// How long the host's RPC server waits per poll before re-checking for
/// shutdown; purely a liveness knob, never a correctness one.
const HOST_POLL_INTERVAL: Duration = Duration::from_millis(200);

fn net_error(e: NetError) -> ClusterError {
    ClusterError::Serve(ServeError::Remote(e.to_string()))
}

fn wire_gauge(g: &ShardGauge) -> WireGauge {
    WireGauge {
        shard: g.shard as u64,
        sessions: g.sessions as u64,
        queue_depth: g.queue_depth as u64,
        deepest_queue: g.deepest_queue.map(|(id, depth)| (id, depth as u64)),
        ready: g.ready as u64,
        dropped_frames: g.dropped_frames,
        merged_frames: g.merged_frames,
        blocked_submits: g.blocked_submits,
        steps: g.steps,
        responses: g.responses,
        model_version: g.model_version,
    }
}

fn shard_gauge(g: &WireGauge, shard: usize) -> ShardGauge {
    ShardGauge {
        // The cluster-wide index is the router's knowledge, not the host's:
        // a host process serves "its" shard without knowing where it sits in
        // the cluster, so the translation thread stamps the index.
        shard,
        sessions: g.sessions as usize,
        queue_depth: g.queue_depth as usize,
        deepest_queue: g.deepest_queue.map(|(id, depth)| (id, depth as usize)),
        ready: g.ready as usize,
        dropped_frames: g.dropped_frames,
        merged_frames: g.merged_frames,
        blocked_submits: g.blocked_submits,
        steps: g.steps,
        responses: g.responses,
        model_version: g.model_version,
    }
}

// ---------------------------------------------------------------------------
// Host side.
// ---------------------------------------------------------------------------

/// One shard of the cluster, served on this machine for a remote router.
///
/// `serve` blocks until the router shuts the cluster down (a
/// [`WireRequest::Shutdown`]) or the link is gone for good; either way the
/// local worker is joined before it returns.
#[derive(Debug)]
pub struct HostShard {
    model: Sequential,
    config: ClusterConfig,
}

impl HostShard {
    /// Prepares a host shard serving `model` under the cluster's shared
    /// shard configuration (`config.serve`, the backpressure spec, the
    /// default SLO class, auto-stepping — the fields every shard must agree
    /// on for the cluster's output to be deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] when the configuration is
    /// invalid.
    pub fn new(model: Sequential, config: ClusterConfig) -> Result<Self> {
        config.validate()?;
        Ok(HostShard { model, config })
    }

    /// Serves wire requests over `transport` until shutdown or disconnect.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when the local worker
    /// dies mid-serve and a transport-level [`ClusterError::Serve`] for
    /// unrecoverable link failures (a clean peer disconnect is a normal
    /// return, not an error).
    pub fn serve(self, transport: impl Transport) -> Result<()> {
        let engine = ServeEngine::new(self.model, self.config.serve.clone())
            .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?;
        let (tx, rx) = bounded(self.config.channel_capacity);
        let worker = ShardWorker::new(
            0,
            engine,
            rx,
            self.config.backpressure,
            self.config.default_slo,
            self.config.auto_step,
            self.config.channel_capacity,
        );
        let kernel_threads = fuse_parallel::available_threads();
        let kernel_min_work = fuse_parallel::min_parallel_work();
        let kernel_backend = fuse_backend::active_choice();
        let handle = std::thread::Builder::new()
            .name("fuse-cluster-host-worker".into())
            .spawn(move || {
                fuse_parallel::with_threads(kernel_threads, || {
                    fuse_parallel::with_min_parallel_work(kernel_min_work, || {
                        fuse_backend::with_backend(kernel_backend, || worker.run())
                    })
                })
            })
            .expect("spawning host shard worker failed");

        let result = Self::serve_loop(&tx, transport);
        drop(tx);
        let _ = handle.join();
        result
    }

    fn serve_loop(tx: &Sender<Command>, transport: impl Transport) -> Result<()> {
        let mut server = RpcServer::new(transport);
        loop {
            let body = match server.next_request(HOST_POLL_INTERVAL) {
                Ok(Some(body)) => body,
                Ok(None) => continue,
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(net_error(e)),
            };
            let request = WireRequest::decode(&body).map_err(net_error)?;
            let shutting_down = matches!(request, WireRequest::Shutdown);
            let response = Self::execute(tx, request)?;
            match server.respond(&response.encode()) {
                Ok(()) => {}
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(net_error(e)),
            }
            if shutting_down {
                return Ok(());
            }
        }
    }

    /// Runs one wire request against the local worker. `Err` means the
    /// worker itself is gone — shard-level failures travel back inside
    /// [`WireResponse::Error`] instead.
    fn execute(tx: &Sender<Command>, request: WireRequest) -> Result<WireResponse> {
        fn ack<T>(rx: &Receiver<T>) -> Result<T> {
            rx.recv().map_err(|_| ClusterError::ShardUnavailable {
                shard: 0,
                during: "host shard execute",
            })
        }
        fn send(tx: &Sender<Command>, command: Command) -> Result<()> {
            tx.send(command).map_err(|_| ClusterError::ShardUnavailable {
                shard: 0,
                during: "host shard execute",
            })
        }
        fn reply<T>(result: ShardResult<T>, ok: impl FnOnce(T) -> WireResponse) -> WireResponse {
            match result {
                Ok(value) => ok(value),
                Err(e) => WireResponse::Error(WireError::from(&e)),
            }
        }

        Ok(match request {
            WireRequest::Open { config } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Open { config, ack: ack_tx })?;
                reply(ack(&ack_rx)?, |()| WireResponse::Opened)
            }
            WireRequest::Close { id } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Close { id, ack: ack_tx })?;
                reply(ack(&ack_rx)?, |report: CloseReport| {
                    WireResponse::Closed(WireCloseReport {
                        adapted: report.adapted,
                        unserved: report.unserved,
                    })
                })
            }
            WireRequest::Submit { id, frame } => {
                // Fire-and-forget into the worker, like a local submit; the
                // RPC layer's dedup is what makes the enqueue exactly-once.
                // Engine-level failures surface on the next flush, exactly
                // as they do locally.
                send(tx, Command::Submit { id, frame })?;
                WireResponse::Submitted
            }
            WireRequest::Tick { id } => {
                // Fire-and-forget like a submit: dropout ticks never make a
                // lossy producer wait, and tick failures surface on the next
                // flush exactly as submit failures do.
                send(tx, Command::Tick { id })?;
                WireResponse::Ticked
            }
            WireRequest::SetCapacity { class, queue_capacity } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(
                    tx,
                    Command::SetCapacity {
                        class,
                        queue_capacity: queue_capacity as usize,
                        ack: ack_tx,
                    },
                )?;
                ack(&ack_rx)?;
                WireResponse::CapacitySet
            }
            WireRequest::Adapt { id, data, config } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Adapt { id, data: Arc::new(data), config, ack: ack_tx })?;
                reply(ack(&ack_rx)?, WireResponse::Adapted)
            }
            WireRequest::Flush => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Flush { ack: ack_tx })?;
                reply(ack(&ack_rx)?, |report: FlushReport| {
                    WireResponse::Flushed(WireFlushReport {
                        responses: report.responses,
                        dropped: report.dropped,
                        merged: report.merged,
                    })
                })
            }
            WireRequest::Poll => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Poll { ack: ack_tx })?;
                WireResponse::Polled(ack(&ack_rx)?)
            }
            WireRequest::Snapshot => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Snapshot { ack: ack_tx })?;
                let snapshot: ShardSnapshot = ack(&ack_rx)?;
                WireResponse::Snapshot {
                    recorder: Box::new(snapshot.recorder),
                    gauge: wire_gauge(&snapshot.gauge),
                }
            }
            WireRequest::PrepareCheckpoint { bytes } => {
                let (ack_tx, ack_rx) = bounded(1);
                let source = SwapSource::Checkpoint(Arc::new(bytes));
                send(tx, Command::PrepareSwap { source, ack: ack_tx })?;
                reply(ack(&ack_rx)?, |meta: CheckpointMeta| {
                    WireResponse::Prepared(WireCheckpointMeta {
                        model_name: meta.model_name,
                        param_len: meta.param_len as u64,
                    })
                })
            }
            WireRequest::PreparePlan { bytes, name } => {
                let (ack_tx, ack_rx) = bounded(1);
                let source = SwapSource::PlanArtifact { bytes: Arc::new(bytes), name };
                send(tx, Command::PrepareSwap { source, ack: ack_tx })?;
                reply(ack(&ack_rx)?, |meta: CheckpointMeta| {
                    WireResponse::Prepared(WireCheckpointMeta {
                        model_name: meta.model_name,
                        param_len: meta.param_len as u64,
                    })
                })
            }
            WireRequest::CommitSwap => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::CommitSwap { ack: ack_tx })?;
                WireResponse::Committed { version: ack(&ack_rx)? }
            }
            WireRequest::AbortSwap => {
                send(tx, Command::AbortSwap)?;
                WireResponse::Aborted
            }
            WireRequest::ExportSession { id } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Export { id, ack: ack_tx })?;
                reply(ack(&ack_rx)?, WireResponse::Exported)
            }
            WireRequest::ImportSession { state } => {
                let (ack_tx, ack_rx) = bounded(1);
                send(tx, Command::Import { state, ack: ack_tx })?;
                reply(ack(&ack_rx)?, |()| WireResponse::Imported)
            }
            WireRequest::Shutdown => WireResponse::ShuttingDown,
        })
    }
}

// ---------------------------------------------------------------------------
// Router side.
// ---------------------------------------------------------------------------

/// Spawns the translation thread that makes a remote host shard look like a
/// local worker: the returned sender speaks the exact same [`Command`]
/// vocabulary the router uses for in-process shards.
pub(crate) fn spawn_remote_shard(
    shard: usize,
    transport: Box<dyn Transport>,
    channel_capacity: usize,
) -> (Sender<Command>, JoinHandle<()>) {
    let (tx, rx) = bounded::<Command>(channel_capacity);
    let handle = std::thread::Builder::new()
        .name(format!("fuse-cluster-remote-{shard}"))
        .spawn(move || {
            let mut client = RpcClient::new(transport);
            while let Ok(command) = rx.recv() {
                if translate(&mut client, shard, command).is_err() {
                    // The link is gone for good: dropping `rx` (and with it
                    // every queued command's ack sender) is how the router
                    // learns — the same signal a dead local worker gives.
                    return;
                }
            }
            // Clean shutdown: the router dropped its senders, so release
            // the host's worker too. Best-effort — the host also treats a
            // plain disconnect as shutdown.
            let _ = call(&mut client, &WireRequest::Shutdown);
        })
        .expect("spawning remote shard translator failed");
    (tx, handle)
}

fn call(
    client: &mut RpcClient<Box<dyn Transport>>,
    request: &WireRequest,
) -> std::result::Result<WireResponse, NetError> {
    let body = client.call(&request.encode())?;
    WireResponse::decode(&body)
}

/// A response variant the protocol does not allow for the issued request;
/// fed to acks so the failure is attributable, then the link is dropped.
fn protocol_error(response: &WireResponse) -> ServeError {
    ServeError::Remote(format!("protocol mismatch: unexpected response {response:?}"))
}

/// Runs one command against the remote host. `Err` means the link is
/// unusable and the translation thread must die; shard-level failures are
/// delivered through the command's ack instead.
fn translate(
    client: &mut RpcClient<Box<dyn Transport>>,
    shard: usize,
    command: Command,
) -> std::result::Result<(), NetError> {
    /// Fulfils `ack` from the wire response: `ok` maps the expected success
    /// variant (returning `None` for a mismatched variant), wire errors map
    /// to their typed [`ServeError`]s.
    fn fulfil<T>(
        response: WireResponse,
        ack: Sender<ShardResult<T>>,
        ok: impl FnOnce(WireResponse) -> Option<T>,
    ) {
        let result = match response {
            WireResponse::Error(e) => Err(ServeError::from(e)),
            other => match ok(other) {
                Some(value) => Ok(value),
                None => Err(ServeError::Remote("protocol mismatch".into())),
            },
        };
        let _ = ack.send(result);
    }

    match command {
        Command::Open { config, ack } => {
            let response = call(client, &WireRequest::Open { config })?;
            fulfil(response, ack, |r| matches!(r, WireResponse::Opened).then_some(()));
        }
        Command::Close { id, ack } => {
            let response = call(client, &WireRequest::Close { id })?;
            fulfil(response, ack, |r| match r {
                WireResponse::Closed(report) => {
                    Some(CloseReport { adapted: report.adapted, unserved: report.unserved })
                }
                _ => None,
            });
        }
        Command::Submit { id, frame } => {
            // Local submits are fire-and-forget; the wire round-trip is the
            // retransmission anchor, not an ack the router waits on.
            // Engine-level failures surface on the next flush, like local.
            let response = call(client, &WireRequest::Submit { id, frame })?;
            if !matches!(response, WireResponse::Submitted) {
                // Nothing to deliver the mismatch to — treat as link-fatal.
                let _ = protocol_error(&response);
                return Err(NetError::Decode("unexpected submit response".into()));
            }
        }
        Command::Tick { id } => {
            // Fire-and-forget like a submit; the round-trip is only the
            // retransmission anchor.
            let response = call(client, &WireRequest::Tick { id })?;
            if !matches!(response, WireResponse::Ticked) {
                let _ = protocol_error(&response);
                return Err(NetError::Decode("unexpected tick response".into()));
            }
        }
        Command::SetCapacity { class, queue_capacity, ack } => {
            let request = WireRequest::SetCapacity { class, queue_capacity: queue_capacity as u64 };
            let response = call(client, &request)?;
            if matches!(response, WireResponse::CapacitySet) {
                let _ = ack.send(());
            } else {
                return Err(NetError::Decode("unexpected set-capacity response".into()));
            }
        }
        Command::Adapt { id, data, config, ack } => {
            let request = WireRequest::Adapt { id, data: (*data).clone(), config };
            let response = call(client, &request)?;
            fulfil(response, ack, |r| match r {
                WireResponse::Adapted(result) => Some(result),
                _ => None,
            });
        }
        Command::Flush { ack } => {
            let response = call(client, &WireRequest::Flush)?;
            fulfil(response, ack, |r| match r {
                WireResponse::Flushed(report) => Some(FlushReport {
                    responses: report.responses,
                    dropped: report.dropped,
                    merged: report.merged,
                }),
                _ => None,
            });
        }
        Command::Poll { ack } => {
            let response = call(client, &WireRequest::Poll)?;
            if let WireResponse::Polled(responses) = response {
                let _ = ack.send(responses);
            } else {
                return Err(NetError::Decode("unexpected poll response".into()));
            }
        }
        Command::Snapshot { ack } => {
            let response = call(client, &WireRequest::Snapshot)?;
            if let WireResponse::Snapshot { recorder, gauge } = response {
                let _ = ack
                    .send(ShardSnapshot { recorder: *recorder, gauge: shard_gauge(&gauge, shard) });
            } else {
                return Err(NetError::Decode("unexpected snapshot response".into()));
            }
        }
        Command::PrepareSwap { source, ack } => {
            let request = match &source {
                SwapSource::Checkpoint(bytes) => {
                    WireRequest::PrepareCheckpoint { bytes: (**bytes).clone() }
                }
                SwapSource::PlanArtifact { bytes, name } => {
                    WireRequest::PreparePlan { bytes: (**bytes).clone(), name: name.clone() }
                }
            };
            let response = call(client, &request)?;
            fulfil(response, ack, |r| match r {
                WireResponse::Prepared(meta) => Some(CheckpointMeta {
                    model_name: meta.model_name,
                    param_len: meta.param_len as usize,
                }),
                _ => None,
            });
        }
        Command::CommitSwap { ack } => {
            let response = call(client, &WireRequest::CommitSwap)?;
            if let WireResponse::Committed { version } = response {
                let _ = ack.send(version);
            } else {
                return Err(NetError::Decode("unexpected commit response".into()));
            }
        }
        Command::AbortSwap => {
            let response = call(client, &WireRequest::AbortSwap)?;
            if !matches!(response, WireResponse::Aborted) {
                return Err(NetError::Decode("unexpected abort response".into()));
            }
        }
        Command::Export { id, ack } => {
            let response = call(client, &WireRequest::ExportSession { id })?;
            fulfil(response, ack, |r| match r {
                WireResponse::Exported(state) => Some(state),
                _ => None,
            });
        }
        Command::Import { state, ack } => {
            let response = call(client, &WireRequest::ImportSession { state })?;
            fulfil(response, ack, |r| matches!(r, WireResponse::Imported).then_some(()));
        }
    }
    Ok(())
}
