//! Adaptive backpressure: a deterministic hysteresis controller driving each
//! SLO class's *effective* queue capacity from the cluster's observed p99.
//!
//! The controller is **off by default** (`FUSE_ADAPTIVE=0`): the committed
//! golden traces pin the static per-class capacities, and adaptive mode may
//! only change *when* backpressure kicks in — never the fused points, feature
//! maps or joint outputs of the frames that are served (see
//! `REPRODUCIBILITY.md`).
//!
//! Control law, applied per class on every [`AdaptiveController::observe`]
//! call (the router feeds it the end-to-end p99 from
//! [`crate::ClusterMetrics`]):
//!
//! * p99 **above** `budget_ms × high_fraction` → halve the class's capacity
//!   (floored at `min_capacity`) — the cluster is missing its budget, shed
//!   queueing headroom so the policy engages earlier;
//! * p99 **below** `budget_ms × low_fraction` → grow the capacity by one
//!   (capped at `max_capacity`) — there is slack, admit more buffering;
//! * p99 **inside the band** → leave the capacity unchanged.
//!
//! The band between the two thresholds is the hysteresis that keeps the
//! controller from oscillating when the p99 hovers near the budget. The law
//! is a pure function of the observation sequence — no clocks, no RNG — so a
//! replayed latency trace always produces the same capacity schedule (pinned
//! by a unit test).

use fuse_serve::SloClass;

use crate::config::BackpressureSpec;

/// Tuning of the [`AdaptiveController`] hysteresis band and capacity range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Per-frame latency budget the p99 is judged against, in milliseconds
    /// (the router seeds this from `ServeConfig::budget_ms`).
    pub budget_ms: f64,
    /// Shrink threshold as a fraction of the budget: p99 above
    /// `budget_ms × high_fraction` halves the capacity.
    pub high_fraction: f64,
    /// Grow threshold as a fraction of the budget: p99 below
    /// `budget_ms × low_fraction` grows the capacity by one.
    pub low_fraction: f64,
    /// Floor the capacity can never shrink past (a zero capacity would
    /// reject every frame).
    pub min_capacity: usize,
    /// Ceiling the capacity can never grow past.
    pub max_capacity: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            budget_ms: fuse_serve::DEFAULT_BUDGET_MS,
            high_fraction: 1.0,
            low_fraction: 0.5,
            min_capacity: 1,
            max_capacity: 64,
        }
    }
}

/// One capacity decision from [`AdaptiveController::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityUpdate {
    /// The class whose effective capacity changed.
    pub class: SloClass,
    /// The new effective queue capacity.
    pub queue_capacity: usize,
}

/// Deterministic hysteresis controller over the per-class effective queue
/// capacities (see the module docs for the control law).
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    /// Effective capacity per class, indexed by `SloClass::ALL` order.
    capacities: [usize; SloClass::ALL.len()],
}

impl AdaptiveController {
    /// A controller seeded from the static spec: every class starts at the
    /// capacity it would have without adaptation (override or preset).
    pub fn new(spec: &BackpressureSpec, config: AdaptiveConfig) -> Self {
        let mut capacities = [0; SloClass::ALL.len()];
        for (slot, class) in capacities.iter_mut().zip(SloClass::ALL) {
            *slot = spec.resolve(Some(class)).queue_capacity;
        }
        AdaptiveController { config, capacities }
    }

    /// The controller's tuning.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The current effective capacity of a class.
    pub fn capacity(&self, class: SloClass) -> usize {
        self.capacities[Self::index(class)]
    }

    /// Feeds one end-to-end p99 observation and returns the classes whose
    /// effective capacity *changed* (in `SloClass::ALL` order), so the
    /// router only fans out `SetCapacity` commands for real transitions.
    /// An in-band p99 — or one that only re-derives the current value at a
    /// floor/ceiling — produces no updates.
    pub fn observe(&mut self, p99_ms: f64) -> Vec<CapacityUpdate> {
        let high = self.config.budget_ms * self.config.high_fraction;
        let low = self.config.budget_ms * self.config.low_fraction;
        let mut updates = Vec::new();
        for class in SloClass::ALL {
            let current = self.capacities[Self::index(class)];
            let next = if p99_ms > high {
                (current / 2).max(self.config.min_capacity)
            } else if p99_ms < low {
                (current + 1).min(self.config.max_capacity)
            } else {
                current
            };
            if next != current {
                self.capacities[Self::index(class)] = next;
                updates.push(CapacityUpdate { class, queue_capacity: next });
            }
        }
        updates
    }

    fn index(class: SloClass) -> usize {
        SloClass::ALL.iter().position(|c| *c == class).expect("ALL covers every class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackpressurePolicy, BackpressureSpec, ClassBackpressure};

    fn controller() -> AdaptiveController {
        AdaptiveController::new(
            &BackpressureSpec::default(),
            AdaptiveConfig { budget_ms: 100.0, ..AdaptiveConfig::default() },
        )
    }

    #[test]
    fn seeds_from_the_static_spec() {
        let ctl = controller();
        assert_eq!(ctl.capacity(SloClass::Clinical), 16);
        assert_eq!(ctl.capacity(SloClass::Interactive), 8);
        assert_eq!(ctl.capacity(SloClass::Dashboard), 4);

        let spec = BackpressureSpec {
            dashboard: Some(ClassBackpressure {
                policy: BackpressurePolicy::DropOldest,
                queue_capacity: 9,
            }),
            ..BackpressureSpec::default()
        };
        let ctl = AdaptiveController::new(&spec, AdaptiveConfig::default());
        assert_eq!(ctl.capacity(SloClass::Dashboard), 9, "overrides seed the controller too");
    }

    #[test]
    fn in_band_observations_change_nothing() {
        let mut ctl = controller();
        // Band is (50, 100] with the default fractions and a 100 ms budget.
        for p99 in [50.0, 75.0, 100.0] {
            assert!(ctl.observe(p99).is_empty(), "p99={p99} is inside the hysteresis band");
        }
        assert_eq!(ctl.capacity(SloClass::Clinical), 16);
    }

    #[test]
    fn overload_halves_and_slack_grows_with_floor_and_ceiling() {
        let mut ctl = controller();
        // Overload: every class halves, floored at min_capacity.
        let updates = ctl.observe(180.0);
        assert_eq!(
            updates,
            vec![
                CapacityUpdate { class: SloClass::Clinical, queue_capacity: 8 },
                CapacityUpdate { class: SloClass::Interactive, queue_capacity: 4 },
                CapacityUpdate { class: SloClass::Dashboard, queue_capacity: 2 },
            ]
        );
        // Keep overloading until everything sits on the floor; further
        // overload produces no updates (already clamped).
        for _ in 0..8 {
            ctl.observe(180.0);
        }
        assert_eq!(ctl.capacity(SloClass::Dashboard), 1);
        assert!(ctl.observe(180.0).is_empty(), "floored capacities re-derive themselves");
        // Slack: grow back one step at a time.
        let updates = ctl.observe(10.0);
        assert_eq!(updates.len(), 3);
        assert!(updates.iter().all(|u| u.queue_capacity == 2));
    }

    #[test]
    fn a_canned_latency_trace_replays_to_a_pinned_capacity_schedule() {
        // The determinism contract for adaptive mode: the capacity schedule
        // is a pure function of the observation sequence. This trace and its
        // schedule are pinned; a control-law change must update this test
        // (and the REPRODUCIBILITY.md rules) deliberately.
        let trace = [60.0, 120.0, 130.0, 90.0, 40.0, 40.0, 105.0, 30.0];
        let mut ctl = controller();
        let schedule: Vec<[usize; 3]> = trace
            .iter()
            .map(|&p99| {
                ctl.observe(p99);
                [
                    ctl.capacity(SloClass::Clinical),
                    ctl.capacity(SloClass::Interactive),
                    ctl.capacity(SloClass::Dashboard),
                ]
            })
            .collect();
        assert_eq!(
            schedule,
            vec![
                [16, 8, 4], // 60 in band
                [8, 4, 2],  // 120 over budget: halve
                [4, 2, 1],  // 130 over budget: halve again
                [4, 2, 1],  // 90 in band
                [5, 3, 2],  // 40 under low: grow
                [6, 4, 3],  // 40 under low: grow
                [3, 2, 1],  // 105 over budget: halve
                [4, 3, 2],  // 30 under low: grow
            ]
        );
        // Bit-for-bit replay: a fresh controller fed the same trace lands on
        // the same schedule.
        let mut replay = controller();
        for &p99 in &trace {
            replay.observe(p99);
        }
        assert_eq!(replay.capacity(SloClass::Clinical), 4);
        assert_eq!(replay.capacity(SloClass::Interactive), 3);
        assert_eq!(replay.capacity(SloClass::Dashboard), 2);
    }
}
