//! Per-shard worker loops.
//!
//! Each shard owns one [`ServeEngine`] driven by a dedicated worker thread.
//! The router talks to it exclusively through a bounded command channel
//! ([`fuse_parallel::channel`]): submits are fire-and-forget (the async
//! ingestion path — a radar I/O thread never waits for inference), while
//! control commands carry a one-shot ack channel. Commands are handled in
//! FIFO order, which is what makes a flush a barrier: a `Flush` enqueued
//! after N submits is only handled once all N frames are in the engine.
//!
//! When the command queue is idle and `auto_step` is on, the worker steps its
//! engine on its own — responses accumulate in the engine's ready buffer
//! until the router collects them with a `Poll` or `Flush`.
//!
//! **Backpressure** is applied here, when a submit is about to enqueue onto a
//! session whose pending queue is at capacity. The `(policy, capacity)` pair
//! is resolved *per session* from the cluster's [`BackpressureSpec`] by the
//! session's SLO class: `Block` serves backlog first, `DropOldest` evicts the
//! session's oldest pending frame, `MergeFrames` collapses the burst to its
//! newest frame. Every eviction is logged (and surfaced through
//! [`crate::ClusterMetrics`]); in a lockstep schedule the decisions are a
//! pure function of the submit/drain sequence, which the backpressure golden
//! tests pin. When the adaptive controller is enabled, the router pushes
//! `SetCapacity` commands that override a class's *effective* capacity on
//! this shard (the policy never changes adaptively).

use std::collections::BTreeMap;
use std::sync::Arc;

use fuse_core::{FineTuneConfig, FineTuneResult};
use fuse_dataset::EncodedDataset;
use fuse_nn::Checkpoint;
use fuse_parallel::channel::{Receiver, Sender, TryRecvError};
use fuse_radar::PointCloudFrame;
use fuse_serve::{
    PreparedSwap, ServeEngine, ServeError, ServeResponse, SessionConfig, SessionState, SloClass,
};

use crate::config::{BackpressurePolicy, BackpressureSpec, ClassBackpressure};
use crate::metrics::ShardGauge;

/// Result alias for shard-level operations.
pub(crate) type ShardResult<T> = std::result::Result<T, ServeError>;

/// Outcome of closing a session on its shard.
#[derive(Debug)]
pub(crate) struct CloseReport {
    /// Whether the closed session had been adapted to a private model.
    pub adapted: bool,
    /// Frame indices that were still queued (returned by the engine, not
    /// silently dropped).
    pub unserved: Vec<u64>,
}

/// Everything a shard hands back on a flush barrier.
#[derive(Debug)]
pub(crate) struct FlushReport {
    /// All responses produced since the last collection.
    pub responses: Vec<ServeResponse>,
    /// `(session, frame)` pairs dropped by `DropOldest` since the last flush.
    pub dropped: Vec<(u64, u64)>,
    /// `(session, frame)` pairs merged away by `MergeFrames` since the last
    /// flush.
    pub merged: Vec<(u64, u64)>,
}

/// Checkpoint metadata acknowledged by a successful swap preparation.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointMeta {
    pub model_name: String,
    pub param_len: usize,
}

/// What a fan-out hot-swap loads on every shard.
///
/// Swap payloads travel as **bytes**, not paths: the router reads the file
/// once and fans the same buffer out to every shard (local workers and
/// remote hosts alike), so all shards validate byte-identical input and a
/// remote shard needs no shared filesystem.
#[derive(Debug, Clone)]
pub(crate) enum SwapSource {
    /// A `fuse-nn` checkpoint (`FCKP` binary or JSON): weights only, each
    /// shard recompiles its plan after commit.
    Checkpoint(Arc<Vec<u8>>),
    /// A serialized `.fplan` compiled-plan artifact: weights *and* schedule,
    /// installed on each shard without recompilation. Carries the model name
    /// recorded for diagnostics (derived from the file stem).
    PlanArtifact { bytes: Arc<Vec<u8>>, name: String },
}

/// A shard's metrics snapshot: its recorder plus gauges.
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    pub recorder: fuse_serve::LatencyRecorder,
    pub gauge: ShardGauge,
}

/// Commands a router sends to a shard worker.
pub(crate) enum Command {
    Open {
        config: SessionConfig,
        ack: Sender<ShardResult<()>>,
    },
    Close {
        id: u64,
        ack: Sender<ShardResult<CloseReport>>,
    },
    Submit {
        id: u64,
        frame: PointCloudFrame,
    },
    /// A missing-frame tick: advances the session's streaming-op state
    /// deterministically without producing a response. Fire-and-forget like
    /// `Submit`, so a lossy producer never waits on its dropouts.
    Tick {
        id: u64,
    },
    /// Override one SLO class's *effective* queue capacity on this shard
    /// (pushed by the router's adaptive controller; the policy is fixed).
    SetCapacity {
        class: SloClass,
        queue_capacity: usize,
        ack: Sender<()>,
    },
    Adapt {
        id: u64,
        data: Arc<EncodedDataset>,
        config: FineTuneConfig,
        ack: Sender<ShardResult<FineTuneResult>>,
    },
    Flush {
        ack: Sender<ShardResult<FlushReport>>,
    },
    Poll {
        ack: Sender<Vec<ServeResponse>>,
    },
    Snapshot {
        ack: Sender<ShardSnapshot>,
    },
    PrepareSwap {
        source: SwapSource,
        ack: Sender<ShardResult<CheckpointMeta>>,
    },
    CommitSwap {
        ack: Sender<u64>,
    },
    AbortSwap,
    /// Extract a session's full state (history, private model, pending
    /// frames) for migration; the session closes on this shard.
    Export {
        id: u64,
        ack: Sender<ShardResult<Box<SessionState>>>,
    },
    /// Install a migrated session's state, bit-exact.
    Import {
        state: Box<SessionState>,
        ack: Sender<ShardResult<()>>,
    },
}

/// State of one shard's worker loop (see the module docs).
pub(crate) struct ShardWorker {
    shard: usize,
    engine: ServeEngine,
    rx: Receiver<Command>,
    /// Static per-class backpressure (cluster default + overrides/presets).
    spec: BackpressureSpec,
    /// SLO class applied to sessions opened without one (`FUSE_SLO_DEFAULT`).
    default_slo: Option<SloClass>,
    /// Adaptive *effective* capacity per class, pushed by `SetCapacity`;
    /// absent classes use the static spec. Only capacities adapt — the
    /// policy always comes from the spec.
    effective_capacity: BTreeMap<SloClass, usize>,
    auto_step: bool,
    /// Autonomous stepping pauses once this many responses sit uncollected
    /// in the engine's ready buffer: without the pause, a producer that
    /// submits but never polls would grow `ready` without limit while the
    /// backpressure policy never fires (auto-stepping keeps the pending
    /// queue below capacity). Pausing lets the pending queue fill instead,
    /// so the configured policy bounds the whole shard.
    ready_limit: usize,
    prepared: Option<PreparedSwap>,
    /// First engine failure since the last flush; surfaced on the next ack.
    failed: Option<ServeError>,
    dropped_log: Vec<(u64, u64)>,
    merged_log: Vec<(u64, u64)>,
    dropped_total: u64,
    merged_total: u64,
    blocked_total: u64,
    steps_total: u64,
    responses_total: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        engine: ServeEngine,
        rx: Receiver<Command>,
        spec: BackpressureSpec,
        default_slo: Option<SloClass>,
        auto_step: bool,
        ready_limit: usize,
    ) -> Self {
        ShardWorker {
            shard,
            engine,
            rx,
            spec,
            default_slo,
            effective_capacity: BTreeMap::new(),
            auto_step,
            ready_limit,
            prepared: None,
            failed: None,
            dropped_log: Vec::new(),
            merged_log: Vec::new(),
            dropped_total: 0,
            merged_total: 0,
            blocked_total: 0,
            steps_total: 0,
            responses_total: 0,
        }
    }

    /// Runs the worker loop until every router-side sender is dropped.
    pub(crate) fn run(mut self) {
        loop {
            let command = if self.auto_step
                && self.engine.pending_len() > 0
                && self.engine.ready_len() < self.ready_limit
            {
                // Work is queued and there is room for its responses: prefer
                // a waiting command (FIFO), otherwise step the engine
                // instead of idling.
                match self.rx.try_recv() {
                    Ok(command) => command,
                    Err(TryRecvError::Empty) => {
                        self.step_once();
                        continue;
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            } else {
                match self.rx.recv() {
                    Ok(command) => command,
                    Err(_) => break,
                }
            };
            self.handle(command);
        }
    }

    fn step_once(&mut self) {
        match self.engine.step() {
            Ok(produced) => {
                self.steps_total += 1;
                self.responses_total += produced as u64;
            }
            Err(e) => {
                self.failed.get_or_insert(e);
            }
        }
    }

    /// The backpressure a session is subject to on this shard: its SLO
    /// class's spec entry (override → preset → cluster default), with the
    /// capacity replaced by any adaptive `SetCapacity` push for the class.
    fn backpressure_for(&self, id: u64) -> ClassBackpressure {
        let class = self.engine.session(id).and_then(|s| s.slo_class());
        let mut resolved = self.spec.resolve(class);
        if let Some(class) = class {
            if let Some(&capacity) = self.effective_capacity.get(&class) {
                resolved.queue_capacity = capacity;
            }
        }
        resolved
    }

    /// Applies the session's backpressure for a frame about to join `id`'s
    /// queue, then submits it.
    fn handle_submit(&mut self, id: u64, frame: PointCloudFrame) {
        let ClassBackpressure { policy, queue_capacity } = self.backpressure_for(id);
        if self.engine.pending_for(id) >= queue_capacity {
            match policy {
                BackpressurePolicy::Block => {
                    self.blocked_total += 1;
                    while self.engine.pending_for(id) >= queue_capacity && self.failed.is_none() {
                        self.step_once();
                    }
                }
                BackpressurePolicy::DropOldest => {
                    while self.engine.pending_for(id) >= queue_capacity {
                        match self.engine.drop_oldest_pending(id) {
                            Some(frame_index) => {
                                self.dropped_total += 1;
                                self.dropped_log.push((id, frame_index));
                            }
                            None => break,
                        }
                    }
                }
                BackpressurePolicy::MergeFrames => {
                    let merged = self.engine.merge_pending(id);
                    self.merged_total += merged.len() as u64;
                    self.merged_log.extend(merged.into_iter().map(|frame_index| (id, frame_index)));
                }
            }
        }
        if let Err(e) = self.engine.submit(id, frame) {
            self.failed.get_or_insert(e);
        }
    }

    fn gauge(&self) -> ShardGauge {
        let depths = self.engine.queue_depths();
        ShardGauge {
            shard: self.shard,
            sessions: self.engine.session_count(),
            queue_depth: self.engine.pending_len(),
            // Deepest queue, ties broken by the smaller session id (iterate
            // in id order and require a strictly deeper queue to replace).
            deepest_queue: depths.iter().fold(None, |best, (&id, &depth)| match best {
                Some((_, d)) if d >= depth => best,
                _ => Some((id, depth)),
            }),
            ready: self.engine.ready_len(),
            dropped_frames: self.dropped_total,
            merged_frames: self.merged_total,
            blocked_submits: self.blocked_total,
            steps: self.steps_total,
            responses: self.responses_total,
            model_version: self.engine.model_version(),
        }
    }

    fn handle(&mut self, command: Command) {
        match command {
            Command::Open { config, ack } => {
                // Sessions opened without a class inherit the cluster's
                // FUSE_SLO_DEFAULT (when set); an explicit class wins.
                let config = match (config.slo_class(), self.default_slo) {
                    (None, Some(class)) => config.slo(class),
                    _ => config,
                };
                let result = self.engine.open_session(config).map(|_| ());
                let _ = ack.send(result);
            }
            Command::Close { id, ack } => {
                let result = self.engine.close_session(id).map(|(session, unserved)| CloseReport {
                    adapted: session.is_adapted(),
                    unserved: unserved.iter().map(|p| p.frame_index()).collect(),
                });
                let _ = ack.send(result);
            }
            Command::Submit { id, frame } => self.handle_submit(id, frame),
            Command::Tick { id } => {
                if let Err(e) = self.engine.tick(id) {
                    self.failed.get_or_insert(e);
                }
            }
            Command::SetCapacity { class, queue_capacity, ack } => {
                self.effective_capacity.insert(class, queue_capacity);
                let _ = ack.send(());
            }
            Command::Adapt { id, data, config, ack } => {
                let _ = ack.send(self.engine.adapt_session(id, &data, &config));
            }
            Command::Flush { ack } => {
                while self.engine.pending_len() > 0 && self.failed.is_none() {
                    self.step_once();
                }
                let result = match self.failed.take() {
                    Some(e) => Err(e),
                    None => Ok(FlushReport {
                        responses: self.engine.take_responses(),
                        dropped: std::mem::take(&mut self.dropped_log),
                        merged: std::mem::take(&mut self.merged_log),
                    }),
                };
                let _ = ack.send(result);
            }
            Command::Poll { ack } => {
                let _ = ack.send(self.engine.take_responses());
            }
            Command::Snapshot { ack } => {
                // Hand over the samples, don't copy them: the router absorbs
                // each snapshot into its persistent aggregate, and a clone
                // here would double-count every sample still in the window
                // on the next snapshot.
                let snapshot = ShardSnapshot {
                    recorder: self.engine.recorder_mut().drain(),
                    gauge: self.gauge(),
                };
                let _ = ack.send(snapshot);
            }
            Command::PrepareSwap { source, ack } => {
                let prepared = match &source {
                    SwapSource::Checkpoint(bytes) => Checkpoint::from_bytes(bytes)
                        .map_err(ServeError::from)
                        .and_then(|ckpt| self.engine.prepare_hot_swap_checkpoint(ckpt)),
                    SwapSource::PlanArtifact { bytes, name } => {
                        self.engine.prepare_hot_swap_plan_bytes(bytes, name)
                    }
                };
                let result = prepared.map(|prepared| {
                    let meta = CheckpointMeta {
                        model_name: prepared.checkpoint().model_name.clone(),
                        param_len: prepared.checkpoint().param_len,
                    };
                    self.prepared = Some(prepared);
                    meta
                });
                let _ = ack.send(result);
            }
            Command::CommitSwap { ack } => {
                if let Some(prepared) = self.prepared.take() {
                    self.engine.commit_hot_swap(prepared);
                }
                let _ = ack.send(self.engine.model_version());
            }
            Command::AbortSwap => {
                self.prepared = None;
            }
            Command::Export { id, ack } => {
                let _ = ack.send(self.engine.export_session(id).map(Box::new));
            }
            Command::Import { state, ack } => {
                let _ = ack.send(self.engine.reopen_with_history(*state));
            }
        }
    }
}
