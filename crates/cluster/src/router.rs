//! The cluster router: N engine shards behind one deterministic façade.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use fuse_core::{FineTuneConfig, FineTuneResult};
use fuse_dataset::EncodedDataset;
use fuse_nn::Sequential;
use fuse_parallel::channel::{bounded, Sender};
use fuse_radar::PointCloudFrame;
use fuse_serve::{LatencyRecorder, ServeEngine, ServeResponse};

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::metrics::ClusterMetrics;
use crate::worker::{Command, ShardWorker, SwapSource};
use crate::Result;

/// Outcome of closing a session cluster-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedSession {
    /// The session id.
    pub session_id: u64,
    /// The shard the session lived on.
    pub shard: usize,
    /// Whether the session had been adapted to a private model.
    pub adapted: bool,
    /// Frame indices that were still queued when the session closed —
    /// returned for accounting, never silently dropped.
    pub unserved_frames: Vec<u64>,
}

/// Outcome of a successful fan-out hot-swap.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReport {
    /// Model name recorded in the checkpoint.
    pub model_name: String,
    /// Number of scalar parameters swapped in.
    pub param_len: usize,
    /// The model version every shard now serves.
    pub version: u64,
}

/// Everything one [`ClusterRouter::drain`] barrier returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrainReport {
    /// Every response produced since the last collection, sorted by
    /// `(session id, frame index)`.
    pub responses: Vec<ServeResponse>,
    /// `(session, frame)` pairs dropped by the `DropOldest` policy since the
    /// last flush, sorted.
    pub dropped: Vec<(u64, u64)>,
    /// `(session, frame)` pairs merged away by the `MergeFrames` policy
    /// since the last flush, sorted.
    pub merged: Vec<(u64, u64)>,
}

/// Sharded asynchronous serving router (the `fuse-cluster` tentpole).
///
/// A `ClusterRouter` wraps `shards` independent [`ServeEngine`]s, each driven
/// by its own worker thread, behind one façade:
///
/// * **Deterministic sharding** — session `s` always lives on shard
///   `s % shards` ([`ClusterRouter::shard_of`]); a session's frames are
///   featurized, queued and served entirely on that shard, so its response
///   stream is bit-identical for *any* shard count.
/// * **Async ingestion** — [`ClusterRouter::submit`] only enqueues onto the
///   shard's bounded command channel; inference happens on the worker
///   thread. Producers never block on the model (they block only when the
///   transport channel itself is full).
/// * **Backpressure** — when a session's queue reaches the configured
///   capacity, the shard applies the configured
///   [`crate::BackpressurePolicy`]; drops and merges are counted and
///   surfaced via [`ClusterRouter::metrics`] and [`DrainReport`].
/// * **Atomic fan-out hot-swap** — [`ClusterRouter::hot_swap`] (a `fuse-nn`
///   checkpoint) and [`ClusterRouter::hot_swap_plan`] (a `.fplan`
///   compiled-plan artifact) validate the new weights on every shard before
///   committing on any; a single rejection rolls the whole swap back
///   ([`ClusterError::SwapAborted`]).
/// * **Re-sequenced responses** — [`ClusterRouter::drain`] is a barrier that
///   serves every queued frame and returns all responses sorted by
///   `(session id, frame index)`: the externally observable ordering is a
///   pure function of the submitted workload, independent of shard count and
///   thread interleaving.
///
/// ```
/// use fuse_cluster::{ClusterConfig, ClusterRouter};
/// use fuse_core::{build_mars_cnn, ModelConfig};
/// use fuse_radar::{PointCloudFrame, RadarPoint};
///
/// let model = build_mars_cnn(&ModelConfig::tiny(), 7)?;
/// let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
/// let mut router = ClusterRouter::new(model, config)?;
/// router.open_session(0)?;
/// router.open_session(1)?; // lands on the other shard (1 % 2)
/// let frame = PointCloudFrame::new(0, 0.0, vec![RadarPoint::new(0.1, 2.0, 1.0, 0.0, 1.0)]);
/// router.submit(0, frame.clone())?;
/// router.submit(1, frame)?;
/// let report = router.drain()?; // barrier: every queued frame is served
/// assert_eq!(report.responses.len(), 2);
/// assert!(report.responses.iter().all(|r| r.joints.len() == 57));
/// router.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClusterRouter {
    config: ClusterConfig,
    senders: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    sessions: BTreeMap<u64, usize>,
    /// Flush reports collected during a [`ClusterRouter::drain`] that failed
    /// on another shard; returned by the next successful drain so nothing a
    /// healthy shard already handed over is lost.
    carry: DrainReport,
}

impl ClusterRouter {
    /// Spawns `config.shards` worker threads, each serving a clone of
    /// `model` with the shared [`fuse_serve::ServeConfig`].
    ///
    /// The thread count and kernel backend the shards use are pinned to the
    /// *caller's* [`fuse_parallel::available_threads`] /
    /// [`fuse_backend::active_choice`] at construction time, so
    /// `with_threads(1, …)` / `with_backend(…)` test overrides propagate
    /// into the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for an invalid configuration.
    pub fn new(model: Sequential, config: ClusterConfig) -> Result<Self> {
        config.validate()?;
        let kernel_threads = fuse_parallel::available_threads();
        let kernel_min_work = fuse_parallel::min_parallel_work();
        let kernel_backend = fuse_backend::active_choice();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let engine = ServeEngine::new(model.clone(), config.serve.clone())
                .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?;
            let (tx, rx) = bounded(config.channel_capacity);
            let worker = ShardWorker::new(
                shard,
                engine,
                rx,
                config.queue_capacity,
                config.policy,
                config.auto_step,
                // Uncollected responses pause autonomous stepping at the
                // transport bound, keeping an unpolled shard's memory
                // bounded by channel + pending queues + this buffer.
                config.channel_capacity,
            );
            let handle = std::thread::Builder::new()
                .name(format!("fuse-cluster-shard-{shard}"))
                .spawn(move || {
                    // Propagate the constructor thread's kernel overrides into
                    // the worker (they are thread-local, so the equivalence
                    // tests' `with_threads`/`with_min_parallel_work`/
                    // `with_backend` scopes would otherwise stop at the
                    // thread boundary).
                    fuse_parallel::with_threads(kernel_threads, || {
                        fuse_parallel::with_min_parallel_work(kernel_min_work, || {
                            fuse_backend::with_backend(kernel_backend, || worker.run())
                        })
                    })
                })
                .expect("spawning shard worker failed");
            senders.push(tx);
            workers.push(handle);
        }
        Ok(ClusterRouter {
            config,
            senders,
            workers,
            sessions: BTreeMap::new(),
            carry: DrainReport::default(),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Number of open sessions across the cluster.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The shard a session id maps to: `id % shards`, a pure function of the
    /// id and the shard count.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (session_id % self.config.shards as u64) as usize
    }

    fn send(&self, shard: usize, command: Command, during: &'static str) -> Result<()> {
        self.senders[shard]
            .send(command)
            .map_err(|_| ClusterError::ShardUnavailable { shard, during })
    }

    fn recv_ack<T>(
        &self,
        shard: usize,
        ack: &fuse_parallel::channel::Receiver<T>,
        during: &'static str,
    ) -> Result<T> {
        ack.recv().map_err(|_| ClusterError::ShardUnavailable { shard, during })
    }

    /// Opens a session on its shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::DuplicateSession`] when the id is already open
    /// anywhere in the cluster.
    pub fn open_session(&mut self, id: u64) -> Result<()> {
        if self.sessions.contains_key(&id) {
            return Err(ClusterError::DuplicateSession(id));
        }
        let shard = self.shard_of(id);
        let (ack_tx, ack_rx) = bounded(1);
        self.send(shard, Command::Open { id, ack: ack_tx }, "open_session")?;
        self.recv_ack(shard, &ack_rx, "open_session")??;
        self.sessions.insert(id, shard);
        Ok(())
    }

    /// Closes a session, reporting any frames that were still queued for it.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] when the id is not open.
    pub fn close_session(&mut self, id: u64) -> Result<ClosedSession> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        let (ack_tx, ack_rx) = bounded(1);
        self.send(shard, Command::Close { id, ack: ack_tx }, "close_session")?;
        let report = self.recv_ack(shard, &ack_rx, "close_session")??;
        self.sessions.remove(&id);
        Ok(ClosedSession {
            session_id: id,
            shard,
            adapted: report.adapted,
            unserved_frames: report.unserved,
        })
    }

    /// Submits one frame for a session: the frame is handed to the session's
    /// shard and the call returns — inference happens on the worker thread.
    /// Blocks only when the shard's transport channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id.
    pub fn submit(&mut self, id: u64, frame: PointCloudFrame) -> Result<()> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        self.send(shard, Command::Submit { id, frame }, "submit")
    }

    /// Collects whatever responses are ready right now, without waiting for
    /// queued frames, sorted by `(session id, frame index)`. Per session the
    /// stream is always in frame order; *which* frames are already answered
    /// depends on worker timing — use [`ClusterRouter::drain`] for the
    /// deterministic barrier.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone.
    pub fn poll_responses(&mut self) -> Result<Vec<ServeResponse>> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Poll { ack: ack_tx }, "poll_responses")?;
            acks.push(ack_rx);
        }
        let mut responses = Vec::new();
        for (shard, ack) in acks.iter().enumerate() {
            responses.extend(self.recv_ack(shard, ack, "poll_responses")?);
        }
        responses.sort_by_key(|r| (r.session_id, r.frame_index));
        Ok(responses)
    }

    /// Barrier: every frame submitted before this call is served (or dropped
    /// / merged by backpressure), and everything produced since the last
    /// collection is returned re-sequenced by `(session id, frame index)`.
    ///
    /// The flush fans out to all shards in parallel and gathers in shard
    /// order, so for a given submit/drain schedule the report — responses,
    /// drops and merges alike — is bit-identical for any shard count, thread
    /// count and submission interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone and
    /// propagates the first engine failure of a shard as
    /// [`ClusterError::Serve`]. Even then, every *healthy* shard's flush is
    /// still received and retained, so the failed drain loses nothing: the
    /// next successful `drain` returns the carried responses and eviction
    /// records alongside the new ones.
    pub fn drain(&mut self) -> Result<DrainReport> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Flush { ack: ack_tx }, "drain")?;
            acks.push(ack_rx);
        }
        // Gather EVERY shard's ack before propagating any error — an early
        // return would discard the flushes the healthy shards already took
        // out of their engines.
        let mut failure: Option<ClusterError> = None;
        for (shard, ack) in acks.iter().enumerate() {
            match self.recv_ack(shard, ack, "drain") {
                Ok(Ok(flush)) => {
                    self.carry.responses.extend(flush.responses);
                    self.carry.dropped.extend(flush.dropped);
                    self.carry.merged.extend(flush.merged);
                }
                Ok(Err(e)) if failure.is_none() => failure = Some(ClusterError::from(e)),
                Err(e) if failure.is_none() => failure = Some(e),
                _ => {}
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }
        let mut report = std::mem::take(&mut self.carry);
        report.responses.sort_by_key(|r| (r.session_id, r.frame_index));
        report.dropped.sort_unstable();
        report.merged.sort_unstable();
        Ok(report)
    }

    /// Fine-tunes a session online on its shard (see
    /// [`ServeEngine::adapt_session`]); blocks until the adaptation finished.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id and
    /// propagates fine-tuning errors.
    pub fn adapt_session(
        &mut self,
        id: u64,
        data: &EncodedDataset,
        config: &FineTuneConfig,
    ) -> Result<FineTuneResult> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        let (ack_tx, ack_rx) = bounded(1);
        let command =
            Command::Adapt { id, data: Arc::new(data.clone()), config: *config, ack: ack_tx };
        self.send(shard, command, "adapt_session")?;
        Ok(self.recv_ack(shard, &ack_rx, "adapt_session")??)
    }

    /// Atomically hot-swaps a `fuse-nn` checkpoint (JSON or binary) into
    /// **every** shard: phase one validates the checkpoint on each shard
    /// without touching its served weights
    /// ([`ServeEngine::prepare_hot_swap`]); only when all shards accept does
    /// phase two commit — so either the whole cluster serves the new weights
    /// (every shard's version bumped together) or no shard does.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SwapAborted`] naming the first shard that
    /// rejected the checkpoint; the cluster keeps serving the old weights.
    pub fn hot_swap(&mut self, path: &Path) -> Result<SwapReport> {
        self.fan_out_swap(SwapSource::Checkpoint(path.to_path_buf()))
    }

    /// Atomically hot-swaps a serialized `.fplan` compiled-plan artifact
    /// (written by [`ServeEngine::export_plan`]) into **every** shard, with
    /// the same two-phase all-or-nothing fan-out as
    /// [`ClusterRouter::hot_swap`] — each shard validates the artifact
    /// against its served model and engine geometry
    /// ([`ServeEngine::prepare_hot_swap_plan`]) before any shard commits.
    /// Unlike a checkpoint swap, the shards install the artifact's compiled
    /// schedule directly: no per-shard recompilation after commit.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SwapAborted`] naming the first shard that
    /// rejected the artifact; the cluster keeps serving the old weights.
    pub fn hot_swap_plan(&mut self, path: &Path) -> Result<SwapReport> {
        self.fan_out_swap(SwapSource::PlanArtifact(path.to_path_buf()))
    }

    /// The shared two-phase fan-out behind both swap flavours.
    fn fan_out_swap(&mut self, source: SwapSource) -> Result<SwapReport> {
        // Phase 1: validate everywhere, commit nowhere.
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            let command = Command::PrepareSwap { source: source.clone(), ack: ack_tx };
            self.send(shard, command, "hot_swap prepare")?;
            acks.push(ack_rx);
        }
        let mut meta = None;
        let mut rejection = None;
        for (shard, ack) in acks.iter().enumerate() {
            match self.recv_ack(shard, ack, "hot_swap prepare")? {
                Ok(m) => meta = Some(m),
                Err(e) if rejection.is_none() => rejection = Some((shard, e)),
                Err(_) => {}
            }
        }
        if let Some((shard, source)) = rejection {
            for s in 0..self.senders.len() {
                self.send(s, Command::AbortSwap, "hot_swap abort")?;
            }
            return Err(ClusterError::SwapAborted { shard, source });
        }
        // Phase 2: every shard accepted; commits cannot fail.
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::CommitSwap { ack: ack_tx }, "hot_swap commit")?;
            acks.push(ack_rx);
        }
        let mut version = 0;
        for (shard, ack) in acks.iter().enumerate() {
            version = self.recv_ack(shard, ack, "hot_swap commit")?;
        }
        let meta = meta.expect("at least one shard prepared");
        Ok(SwapReport { model_name: meta.model_name, param_len: meta.param_len, version })
    }

    /// Snapshots every shard and returns the aggregated cluster metrics:
    /// per-shard queue-depth gauges and policy counters, plus one
    /// cluster-level latency report built by absorbing each shard's recorder
    /// in shard order ([`LatencyRecorder::absorb`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone.
    pub fn metrics(&mut self) -> Result<ClusterMetrics> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Snapshot { ack: ack_tx }, "metrics")?;
            acks.push(ack_rx);
        }
        let mut snapshots = Vec::with_capacity(acks.len());
        for (shard, ack) in acks.iter().enumerate() {
            snapshots.push(self.recv_ack(shard, ack, "metrics")?);
        }
        // Size the aggregate window to hold every shard's full window:
        // absorbing N full recorders into a default-sized one would evict
        // the earlier shards' samples and hide exactly the slow shard the
        // report exists to expose.
        let window: usize = snapshots.iter().map(|s| s.recorder.sample_window()).sum();
        let mut recorder =
            LatencyRecorder::new(self.config.serve.budget_ms).with_sample_window(window.max(1));
        let mut shards = Vec::with_capacity(snapshots.len());
        for snapshot in snapshots {
            recorder.absorb(&snapshot.recorder);
            shards.push(snapshot.gauge);
        }
        Ok(ClusterMetrics { report: recorder.report(), shards })
    }

    /// Shuts the cluster down: closes every command channel and joins the
    /// worker threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.finish();
    }
}
