//! The cluster router: N engine shards behind one deterministic façade.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use fuse_core::{FineTuneConfig, FineTuneResult};
use fuse_dataset::EncodedDataset;
use fuse_net::Transport;
use fuse_nn::{NnError, Sequential};
use fuse_parallel::channel::{bounded, Sender};
use fuse_radar::PointCloudFrame;
use fuse_serve::{
    LatencyRecorder, ServeEngine, ServeError, ServeResponse, SessionConfig, Stage,
    DEFAULT_SAMPLE_WINDOW,
};

use crate::adaptive::{AdaptiveConfig, AdaptiveController, CapacityUpdate};
use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::metrics::ClusterMetrics;
use crate::remote::spawn_remote_shard;
use crate::worker::{Command, ShardWorker, SwapSource};
use crate::Result;

/// Where one of the cluster's shards runs.
///
/// The router drives every shard through the same command contract; a
/// remote shard only differs in that its commands are translated onto a
/// [`fuse_net`] link to a [`crate::HostShard`] on another machine.
pub enum ShardSpec {
    /// An in-process worker thread serving a clone of the router's model.
    Local,
    /// A remote [`crate::HostShard`] reached over this transport (TCP for
    /// real deployments, [`fuse_net::SimTransport`] in tests).
    Remote(Box<dyn Transport>),
}

impl std::fmt::Debug for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSpec::Local => f.write_str("Local"),
            ShardSpec::Remote(_) => f.write_str("Remote(..)"),
        }
    }
}

/// Outcome of closing a session cluster-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedSession {
    /// The session id.
    pub session_id: u64,
    /// The shard the session lived on.
    pub shard: usize,
    /// Whether the session had been adapted to a private model.
    pub adapted: bool,
    /// Frame indices that were still queued when the session closed —
    /// returned for accounting, never silently dropped.
    pub unserved_frames: Vec<u64>,
}

/// Outcome of a successful fan-out hot-swap.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReport {
    /// Model name recorded in the checkpoint.
    pub model_name: String,
    /// Number of scalar parameters swapped in.
    pub param_len: usize,
    /// The model version every shard now serves.
    pub version: u64,
}

/// Everything one [`ClusterRouter::drain`] barrier returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrainReport {
    /// Every response produced since the last collection, sorted by
    /// `(session id, frame index)`.
    pub responses: Vec<ServeResponse>,
    /// `(session, frame)` pairs dropped by the `DropOldest` policy since the
    /// last flush, sorted.
    pub dropped: Vec<(u64, u64)>,
    /// `(session, frame)` pairs merged away by the `MergeFrames` policy
    /// since the last flush, sorted.
    pub merged: Vec<(u64, u64)>,
}

/// Sharded asynchronous serving router (the `fuse-cluster` tentpole).
///
/// A `ClusterRouter` wraps `shards` independent [`ServeEngine`]s, each driven
/// by its own worker thread, behind one façade:
///
/// * **Deterministic sharding** — session `s` always lives on shard
///   `s % shards` ([`ClusterRouter::shard_of`]); a session's frames are
///   featurized, queued and served entirely on that shard, so its response
///   stream is bit-identical for *any* shard count.
/// * **Async ingestion** — [`ClusterRouter::submit`] only enqueues onto the
///   shard's bounded command channel; inference happens on the worker
///   thread. Producers never block on the model (they block only when the
///   transport channel itself is full).
/// * **Per-class backpressure** — when a session's queue reaches its
///   capacity, the shard applies the `(policy, capacity)` its SLO class
///   resolves to in the cluster's [`crate::BackpressureSpec`]; drops and
///   merges are counted and surfaced via [`ClusterRouter::metrics`] and
///   [`DrainReport`]. With `adaptive` enabled, [`ClusterRouter::autotune`]
///   feeds the observed end-to-end p99 to an [`AdaptiveController`] and
///   pushes the resulting effective capacities to every shard.
/// * **Atomic fan-out hot-swap** — [`ClusterRouter::hot_swap`] (a `fuse-nn`
///   checkpoint) and [`ClusterRouter::hot_swap_plan`] (a `.fplan`
///   compiled-plan artifact) validate the new weights on every shard before
///   committing on any; a single rejection rolls the whole swap back
///   ([`ClusterError::SwapAborted`]).
/// * **Re-sequenced responses** — [`ClusterRouter::drain`] is a barrier that
///   serves every queued frame and returns all responses sorted by
///   `(session id, frame index)`: the externally observable ordering is a
///   pure function of the submitted workload, independent of shard count and
///   thread interleaving.
///
/// ```
/// use fuse_cluster::{ClusterConfig, ClusterRouter, SessionConfig, SloClass};
/// use fuse_core::{build_mars_cnn, ModelConfig};
/// use fuse_radar::{PointCloudFrame, RadarPoint};
///
/// let model = build_mars_cnn(&ModelConfig::tiny(), 7)?;
/// let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
/// let mut router = ClusterRouter::new(model, config)?;
/// router.open_session(SessionConfig::new(0).slo(SloClass::Clinical))?;
/// router.open_session(SessionConfig::new(1))?; // lands on the other shard (1 % 2)
/// let frame = PointCloudFrame::new(0, 0.0, vec![RadarPoint::new(0.1, 2.0, 1.0, 0.0, 1.0)]);
/// router.submit(0, frame.clone())?;
/// router.submit(1, frame)?;
/// let report = router.drain()?; // barrier: every queued frame is served
/// assert_eq!(report.responses.len(), 2);
/// assert!(report.responses.iter().all(|r| r.joints.len() == 57));
/// router.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClusterRouter {
    config: ClusterConfig,
    senders: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    sessions: BTreeMap<u64, usize>,
    /// Flush reports collected during a [`ClusterRouter::drain`] that failed
    /// on another shard; returned by the next successful drain so nothing a
    /// healthy shard already handed over is lost.
    carry: DrainReport,
    /// Persistent cluster-wide latency aggregate. Shard snapshots *drain*
    /// their recorders (take-and-clear), so each snapshot carries only the
    /// samples since the previous one; this recorder is where they
    /// accumulate across [`ClusterRouter::metrics`] calls.
    aggregate: LatencyRecorder,
    /// The adaptive backpressure controller; present only when the config
    /// enables it (`FUSE_ADAPTIVE=1`).
    adaptive: Option<AdaptiveController>,
}

impl ClusterRouter {
    /// Spawns `config.shards` worker threads, each serving a clone of
    /// `model` with the shared [`fuse_serve::ServeConfig`].
    ///
    /// The thread count and kernel backend the shards use are pinned to the
    /// *caller's* [`fuse_parallel::available_threads`] /
    /// [`fuse_backend::active_choice`] at construction time, so
    /// `with_threads(1, …)` / `with_backend(…)` test overrides propagate
    /// into the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for an invalid configuration.
    pub fn new(model: Sequential, config: ClusterConfig) -> Result<Self> {
        let shards = config.shards;
        Self::with_shards(model, config, (0..shards).map(|_| ShardSpec::Local).collect())
    }

    /// Like [`ClusterRouter::new`], but with per-shard placement: each
    /// [`ShardSpec::Local`] spawns an in-process worker serving a clone of
    /// `model`, each [`ShardSpec::Remote`] connects a translation thread to
    /// a [`crate::HostShard`] over the given transport. Mixed clusters are
    /// fine — the router drives every shard through the same contract, so
    /// the response stream stays bit-identical for any placement.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for an invalid configuration
    /// or when `specs.len() != config.shards`.
    pub fn with_shards(
        model: Sequential,
        config: ClusterConfig,
        specs: Vec<ShardSpec>,
    ) -> Result<Self> {
        config.validate()?;
        if specs.len() != config.shards {
            return Err(ClusterError::InvalidConfig(format!(
                "{} shard specs for {} shards",
                specs.len(),
                config.shards
            )));
        }
        let kernel_threads = fuse_parallel::available_threads();
        let kernel_min_work = fuse_parallel::min_parallel_work();
        let kernel_backend = fuse_backend::active_choice();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (shard, spec) in specs.into_iter().enumerate() {
            let (tx, handle) = match spec {
                ShardSpec::Local => {
                    let engine = ServeEngine::new(model.clone(), config.serve.clone())
                        .map_err(|e| ClusterError::InvalidConfig(e.to_string()))?;
                    let (tx, rx) = bounded(config.channel_capacity);
                    let worker = ShardWorker::new(
                        shard,
                        engine,
                        rx,
                        config.backpressure,
                        config.default_slo,
                        config.auto_step,
                        // Uncollected responses pause autonomous stepping at
                        // the transport bound, keeping an unpolled shard's
                        // memory bounded by channel + pending queues + this
                        // buffer.
                        config.channel_capacity,
                    );
                    let handle = std::thread::Builder::new()
                        .name(format!("fuse-cluster-shard-{shard}"))
                        .spawn(move || {
                            // Propagate the constructor thread's kernel
                            // overrides into the worker (they are
                            // thread-local, so the equivalence tests'
                            // `with_threads`/`with_min_parallel_work`/
                            // `with_backend` scopes would otherwise stop at
                            // the thread boundary).
                            fuse_parallel::with_threads(kernel_threads, || {
                                fuse_parallel::with_min_parallel_work(kernel_min_work, || {
                                    fuse_backend::with_backend(kernel_backend, || worker.run())
                                })
                            })
                        })
                        .expect("spawning shard worker failed");
                    (tx, handle)
                }
                ShardSpec::Remote(transport) => {
                    spawn_remote_shard(shard, transport, config.channel_capacity)
                }
            };
            senders.push(tx);
            workers.push(handle);
        }
        // Size the persistent aggregate to hold every shard's full window:
        // absorbing N full recorders into a default-sized one would evict
        // the earlier shards' samples and hide exactly the slow shard the
        // report exists to expose.
        let aggregate = LatencyRecorder::new(config.serve.budget_ms)
            .with_sample_window(config.shards.max(1) * DEFAULT_SAMPLE_WINDOW);
        let adaptive = config.adaptive.then(|| {
            AdaptiveController::new(
                &config.backpressure,
                AdaptiveConfig { budget_ms: config.serve.budget_ms, ..AdaptiveConfig::default() },
            )
        });
        Ok(ClusterRouter {
            config,
            senders,
            workers,
            sessions: BTreeMap::new(),
            carry: DrainReport::default(),
            aggregate,
            adaptive,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Number of open sessions across the cluster.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The shard a session id maps to. For an open session this is where it
    /// actually lives (which follows [`ClusterRouter::migrate_session`]);
    /// for an unopened id it is the deterministic default placement,
    /// `id % shards`.
    pub fn shard_of(&self, session_id: u64) -> usize {
        self.sessions
            .get(&session_id)
            .copied()
            .unwrap_or((session_id % self.config.shards as u64) as usize)
    }

    fn send(&self, shard: usize, command: Command, during: &'static str) -> Result<()> {
        self.senders[shard]
            .send(command)
            .map_err(|_| ClusterError::ShardUnavailable { shard, during })
    }

    fn recv_ack<T>(
        &self,
        shard: usize,
        ack: &fuse_parallel::channel::Receiver<T>,
        during: &'static str,
    ) -> Result<T> {
        ack.recv().map_err(|_| ClusterError::ShardUnavailable { shard, during })
    }

    /// Opens a session on its shard from a typed [`SessionConfig`]: the id
    /// picks the shard, the optional SLO class picks the backpressure the
    /// session is served under (unset classes inherit the cluster's
    /// `FUSE_SLO_DEFAULT`, when configured), and the optional fusion /
    /// feature-map overrides configure its streaming ops.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::DuplicateSession`] when the id is already open
    /// anywhere in the cluster and propagates the engine's validation of the
    /// config (e.g. a feature-map override with the wrong dimensions).
    pub fn open_session(&mut self, config: SessionConfig) -> Result<()> {
        let id = config.id();
        if self.sessions.contains_key(&id) {
            return Err(ClusterError::DuplicateSession(id));
        }
        let shard = self.shard_of(id);
        let (ack_tx, ack_rx) = bounded(1);
        self.send(shard, Command::Open { config, ack: ack_tx }, "open_session")?;
        self.recv_ack(shard, &ack_rx, "open_session")??;
        self.sessions.insert(id, shard);
        Ok(())
    }

    /// Closes a session, reporting any frames that were still queued for it.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] when the id is not open.
    pub fn close_session(&mut self, id: u64) -> Result<ClosedSession> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        let (ack_tx, ack_rx) = bounded(1);
        self.send(shard, Command::Close { id, ack: ack_tx }, "close_session")?;
        let report = self.recv_ack(shard, &ack_rx, "close_session")??;
        self.sessions.remove(&id);
        Ok(ClosedSession {
            session_id: id,
            shard,
            adapted: report.adapted,
            unserved_frames: report.unserved,
        })
    }

    /// Submits one frame for a session: the frame is handed to the session's
    /// shard and the call returns — inference happens on the worker thread.
    /// Blocks only when the shard's transport channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id.
    pub fn submit(&mut self, id: u64, frame: PointCloudFrame) -> Result<()> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        self.send(shard, Command::Submit { id, frame }, "submit")
    }

    /// Advances a session past a missing frame: the dropout becomes an
    /// explicit, deterministic state transition of the session's streaming
    /// ops instead of a silent gap. Fire-and-forget like
    /// [`ClusterRouter::submit`] — a lossy producer never waits on its
    /// dropouts.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id.
    pub fn tick(&mut self, id: u64) -> Result<()> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        self.send(shard, Command::Tick { id }, "tick")
    }

    /// Collects whatever responses are ready right now, without waiting for
    /// queued frames, sorted by `(session id, frame index)`. Per session the
    /// stream is always in frame order; *which* frames are already answered
    /// depends on worker timing — use [`ClusterRouter::drain`] for the
    /// deterministic barrier.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone.
    pub fn poll_responses(&mut self) -> Result<Vec<ServeResponse>> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Poll { ack: ack_tx }, "poll_responses")?;
            acks.push(ack_rx);
        }
        let mut responses = Vec::new();
        for (shard, ack) in acks.iter().enumerate() {
            responses.extend(self.recv_ack(shard, ack, "poll_responses")?);
        }
        responses.sort_by_key(|r| (r.session_id, r.frame_index));
        Ok(responses)
    }

    /// Barrier: every frame submitted before this call is served (or dropped
    /// / merged by backpressure), and everything produced since the last
    /// collection is returned re-sequenced by `(session id, frame index)`.
    ///
    /// The flush fans out to all shards in parallel and gathers in shard
    /// order, so for a given submit/drain schedule the report — responses,
    /// drops and merges alike — is bit-identical for any shard count, thread
    /// count and submission interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone and
    /// propagates the first engine failure of a shard as
    /// [`ClusterError::Serve`]. Even then, every *healthy* shard's flush is
    /// still received and retained, so the failed drain loses nothing: the
    /// next successful `drain` returns the carried responses and eviction
    /// records alongside the new ones.
    pub fn drain(&mut self) -> Result<DrainReport> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Flush { ack: ack_tx }, "drain")?;
            acks.push(ack_rx);
        }
        // Gather EVERY shard's ack before propagating any error — an early
        // return would discard the flushes the healthy shards already took
        // out of their engines.
        let mut failure: Option<ClusterError> = None;
        for (shard, ack) in acks.iter().enumerate() {
            match self.recv_ack(shard, ack, "drain") {
                Ok(Ok(flush)) => {
                    self.carry.responses.extend(flush.responses);
                    self.carry.dropped.extend(flush.dropped);
                    self.carry.merged.extend(flush.merged);
                }
                Ok(Err(e)) if failure.is_none() => failure = Some(ClusterError::from(e)),
                Err(e) if failure.is_none() => failure = Some(e),
                _ => {}
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }
        let mut report = std::mem::take(&mut self.carry);
        report.responses.sort_by_key(|r| (r.session_id, r.frame_index));
        report.dropped.sort_unstable();
        report.merged.sort_unstable();
        Ok(report)
    }

    /// Fine-tunes a session online on its shard (see
    /// [`ServeEngine::adapt_session`]); blocks until the adaptation finished.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id and
    /// propagates fine-tuning errors.
    pub fn adapt_session(
        &mut self,
        id: u64,
        data: &EncodedDataset,
        config: &FineTuneConfig,
    ) -> Result<FineTuneResult> {
        let shard = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        let (ack_tx, ack_rx) = bounded(1);
        let command =
            Command::Adapt { id, data: Arc::new(data.clone()), config: *config, ack: ack_tx };
        self.send(shard, command, "adapt_session")?;
        Ok(self.recv_ack(shard, &ack_rx, "adapt_session")??)
    }

    /// Moves a live session — fusion history, private fine-tuned model and
    /// still-pending frames — to `target_shard`, which may be local or
    /// remote. The session's state travels bit-exactly (parameters as their
    /// `FCKP` bit patterns, featurized tensors as-is), so every response
    /// after the migration is byte-identical to what the session would have
    /// produced had it never moved.
    ///
    /// Routing for the session follows the move: `submit`/`adapt`/`close`
    /// consult the live session map, not the `id % shards` default, so a
    /// migrated session keeps serving from its new home.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSession`] for an unopened id,
    /// [`ClusterError::InvalidConfig`] for an out-of-range target, and
    /// propagates shard failures. If installing on the target fails, the
    /// state is restored onto the source shard before the error returns.
    pub fn migrate_session(&mut self, id: u64, target_shard: usize) -> Result<()> {
        let source = *self.sessions.get(&id).ok_or(ClusterError::UnknownSession(id))?;
        if target_shard >= self.senders.len() {
            return Err(ClusterError::InvalidConfig(format!(
                "migration target shard {target_shard} out of range (cluster has {})",
                self.senders.len()
            )));
        }
        if source == target_shard {
            return Ok(());
        }
        let (ack_tx, ack_rx) = bounded(1);
        self.send(source, Command::Export { id, ack: ack_tx }, "migrate_session export")?;
        let state = self.recv_ack(source, &ack_rx, "migrate_session export")??;
        // The session is now closed on its source shard; until the import
        // acks, the only copy lives in `state`.
        self.sessions.remove(&id);
        let (ack_tx, ack_rx) = bounded(1);
        self.send(
            target_shard,
            Command::Import { state: state.clone(), ack: ack_tx },
            "migrate_session import",
        )?;
        match self.recv_ack(target_shard, &ack_rx, "migrate_session import")? {
            Ok(()) => {
                self.sessions.insert(id, target_shard);
                Ok(())
            }
            Err(e) => {
                // Put the session back where it came from so a rejected
                // migration is observable but not destructive.
                let (ack_tx, ack_rx) = bounded(1);
                self.send(
                    source,
                    Command::Import { state, ack: ack_tx },
                    "migrate_session restore",
                )?;
                self.recv_ack(source, &ack_rx, "migrate_session restore")??;
                self.sessions.insert(id, source);
                Err(ClusterError::Serve(e))
            }
        }
    }

    /// Atomically hot-swaps a `fuse-nn` checkpoint (JSON or binary) into
    /// **every** shard: phase one validates the checkpoint on each shard
    /// without touching its served weights
    /// ([`ServeEngine::prepare_hot_swap`]); only when all shards accept does
    /// phase two commit — so either the whole cluster serves the new weights
    /// (every shard's version bumped together) or no shard does.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SwapAborted`] naming the first shard that
    /// rejected the checkpoint; the cluster keeps serving the old weights.
    pub fn hot_swap(&mut self, path: &Path) -> Result<SwapReport> {
        self.fan_out_swap(SwapSource::Checkpoint(Arc::new(read_swap_payload(path)?)))
    }

    /// Atomically hot-swaps a serialized `.fplan` compiled-plan artifact
    /// (written by [`ServeEngine::export_plan`]) into **every** shard, with
    /// the same two-phase all-or-nothing fan-out as
    /// [`ClusterRouter::hot_swap`] — each shard validates the artifact
    /// against its served model and engine geometry
    /// ([`ServeEngine::prepare_hot_swap_plan`]) before any shard commits.
    /// Unlike a checkpoint swap, the shards install the artifact's compiled
    /// schedule directly: no per-shard recompilation after commit.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SwapAborted`] naming the first shard that
    /// rejected the artifact; the cluster keeps serving the old weights.
    pub fn hot_swap_plan(&mut self, path: &Path) -> Result<SwapReport> {
        let name =
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("fplan-artifact").to_string();
        let bytes = Arc::new(read_swap_payload(path)?);
        self.fan_out_swap(SwapSource::PlanArtifact { bytes, name })
    }

    /// The shared two-phase fan-out behind both swap flavours. The payload
    /// was read from disk exactly once; every shard — in-process or remote —
    /// validates the same bytes.
    fn fan_out_swap(&mut self, source: SwapSource) -> Result<SwapReport> {
        // Phase 1: validate everywhere, commit nowhere.
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            let command = Command::PrepareSwap { source: source.clone(), ack: ack_tx };
            self.send(shard, command, "hot_swap prepare")?;
            acks.push(ack_rx);
        }
        let mut meta = None;
        let mut rejection = None;
        for (shard, ack) in acks.iter().enumerate() {
            match self.recv_ack(shard, ack, "hot_swap prepare")? {
                Ok(m) => meta = Some(m),
                Err(e) if rejection.is_none() => rejection = Some((shard, e)),
                Err(_) => {}
            }
        }
        if let Some((shard, source)) = rejection {
            for s in 0..self.senders.len() {
                self.send(s, Command::AbortSwap, "hot_swap abort")?;
            }
            return Err(ClusterError::SwapAborted { shard, source });
        }
        // Phase 2: every shard accepted; commits cannot fail.
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::CommitSwap { ack: ack_tx }, "hot_swap commit")?;
            acks.push(ack_rx);
        }
        let mut version = 0;
        for (shard, ack) in acks.iter().enumerate() {
            version = self.recv_ack(shard, ack, "hot_swap commit")?;
        }
        let meta = meta.expect("at least one shard prepared");
        Ok(SwapReport { model_name: meta.model_name, param_len: meta.param_len, version })
    }

    /// Snapshots every shard and returns the aggregated cluster metrics:
    /// per-shard queue-depth gauges and policy counters, plus one
    /// cluster-level latency report built by absorbing each shard's drained
    /// samples — in shard order — into the router's persistent aggregate
    /// ([`LatencyRecorder::absorb`]). Shards hand their samples over
    /// exactly once ([`LatencyRecorder::drain`]), so repeated `metrics`
    /// calls never double-count a sample no matter how often they run.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone.
    pub fn metrics(&mut self) -> Result<ClusterMetrics> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ack_tx, ack_rx) = bounded(1);
            self.send(shard, Command::Snapshot { ack: ack_tx }, "metrics")?;
            acks.push(ack_rx);
        }
        let mut shards = Vec::with_capacity(acks.len());
        for (shard, ack) in acks.iter().enumerate() {
            let snapshot = self.recv_ack(shard, ack, "metrics")?;
            self.aggregate.absorb(&snapshot.recorder);
            shards.push(snapshot.gauge);
        }
        Ok(ClusterMetrics { report: self.aggregate.report(), shards })
    }

    /// Runs one adaptive-backpressure control step: snapshots the cluster
    /// metrics, feeds the observed end-to-end p99 to the
    /// [`AdaptiveController`], and fans any changed effective capacities out
    /// to every shard (blocking until each shard acks, so the new
    /// capacities are in force when this returns). Returns the updates that
    /// were applied — empty when adaptation is disabled, when no end-to-end
    /// samples were recorded yet, or when the p99 sits inside the
    /// hysteresis band.
    ///
    /// The step is explicit (no background timer) and the controller is a
    /// pure function of the observation sequence, so a given workload +
    /// autotune schedule always produces the same capacity schedule — see
    /// `REPRODUCIBILITY.md` for what adaptive mode may and may not change.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardUnavailable`] when a worker is gone.
    pub fn autotune(&mut self) -> Result<Vec<CapacityUpdate>> {
        if self.adaptive.is_none() {
            return Ok(Vec::new());
        }
        let metrics = self.metrics()?;
        let p99 = metrics
            .report
            .stages
            .iter()
            .find(|(stage, _)| *stage == Stage::Total)
            .map(|(_, stats)| stats.p99_ms);
        let Some(p99) = p99 else { return Ok(Vec::new()) };
        let controller = self.adaptive.as_mut().expect("checked above");
        let updates = controller.observe(p99);
        for update in &updates {
            let mut acks = Vec::with_capacity(self.senders.len());
            for shard in 0..self.senders.len() {
                let (ack_tx, ack_rx) = bounded(1);
                let command = Command::SetCapacity {
                    class: update.class,
                    queue_capacity: update.queue_capacity,
                    ack: ack_tx,
                };
                self.send(shard, command, "autotune")?;
                acks.push(ack_rx);
            }
            for (shard, ack) in acks.iter().enumerate() {
                self.recv_ack(shard, ack, "autotune")?;
            }
        }
        Ok(updates)
    }

    /// The current effective queue capacity of an SLO class: the adaptive
    /// controller's value when adaptation is enabled, the static spec's
    /// resolution otherwise.
    pub fn effective_capacity(&self, class: fuse_serve::SloClass) -> usize {
        match &self.adaptive {
            Some(controller) => controller.capacity(class),
            None => self.config.backpressure.resolve(Some(class)).queue_capacity,
        }
    }

    /// Shuts the cluster down: closes every command channel and joins the
    /// worker threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Reads a swap payload (checkpoint or plan artifact) off disk, once.
fn read_swap_payload(path: &Path) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| {
        ClusterError::Serve(ServeError::Nn(NnError::Serialization(format!(
            "read {}: {e}",
            path.display()
        ))))
    })
}
