//! Cluster configuration: shard count, backpressure policy, and typed
//! environment-knob parsing.

use fuse_serve::ServeConfig;

use crate::error::ClusterError;
use crate::Result;

/// Environment knob selecting the number of engine shards.
pub const FUSE_SHARDS_ENV: &str = "FUSE_SHARDS";

/// Hard ceiling on the shard count: one engine per core is the intended
/// deployment shape, so anything past this is a configuration mistake.
pub const MAX_SHARDS: usize = 64;

/// The environment knobs owned by `fuse-cluster` (see
/// [`fuse_parallel::env::KnobDef`] for how these feed the generated
/// `README.md` reference table).
pub const CLUSTER_KNOBS: &[fuse_parallel::env::KnobDef] = &[fuse_parallel::env::KnobDef {
    name: FUSE_SHARDS_ENV,
    default: "1",
    accepts: "positive integer (at most 64)",
    description: "Engine shards the cluster router fans sessions out across",
}];

/// Default per-session queue capacity: at the 10 Hz frame rate a session
/// with more than [`DEFAULT_QUEUE_CAPACITY`] frames queued is already most of
/// a second behind the 100 ms budget, so this is where the backpressure
/// policy kicks in.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8;

/// Default bound of each shard's command channel (the transport between
/// submitting threads and the worker loop).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// What a shard does when a session's pending queue reaches the configured
/// capacity and another frame arrives for it.
///
/// | Policy        | Latency       | Loss                        | Use when |
/// |---------------|---------------|-----------------------------|----------|
/// | `Block`       | grows         | none                        | every frame matters (clinical capture) |
/// | `DropOldest`  | bounded       | oldest frame per overflow   | freshest-pose-wins dashboards |
/// | `MergeFrames` | bounded       | burst coalesced to newest   | bursty producers, keep one representative |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Serve the backlog before accepting the new frame: the shard steps its
    /// engine until the session is under capacity again. Nothing is lost;
    /// submit latency absorbs the overload. Because `Block` never discards
    /// work, a caller that submits without ever collecting responses trades
    /// memory for the losslessness — collect (`poll_responses`/`drain`) at
    /// least as often as you submit bursts.
    #[default]
    Block,
    /// Drop the session's oldest pending frame to make room. Bounded
    /// latency; the drop is counted and surfaced in the cluster metrics.
    DropOldest,
    /// Collapse the session's pending queue to its newest frame (which
    /// already carries the fused history of the burst) and count the merged
    /// frames.
    MergeFrames,
}

impl BackpressurePolicy {
    /// Short lowercase policy name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop-oldest",
            BackpressurePolicy::MergeFrames => "merge-frames",
        }
    }
}

impl std::fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`crate::ClusterRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Per-shard engine configuration (every shard is identical).
    pub serve: ServeConfig,
    /// Number of engine shards; sessions map to shards deterministically by
    /// `session_id % shards`.
    pub shards: usize,
    /// Per-session pending-frame capacity at which the backpressure policy
    /// applies.
    pub queue_capacity: usize,
    /// Bound of each shard's submit channel.
    pub channel_capacity: usize,
    /// Backpressure policy applied by every shard.
    pub policy: BackpressurePolicy,
    /// When `true` (the default), shard workers run [`fuse_serve::ServeEngine::step`]
    /// whenever their command queue is idle, so responses appear without an
    /// explicit flush — the asynchronous serving mode. When `false`, engines
    /// only step inside [`crate::ClusterRouter::drain`] (and inside a
    /// blocking submit), which makes backpressure decisions a pure function
    /// of the submit/drain schedule — the mode the deterministic
    /// backpressure golden tests pin.
    pub auto_step: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            serve: ServeConfig::default(),
            shards: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            policy: BackpressurePolicy::default(),
            auto_step: true,
        }
    }
}

impl ClusterConfig {
    /// The default configuration with the shard count taken from
    /// `FUSE_SHARDS` (when set).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidEnv`] when `FUSE_SHARDS` is set but is
    /// not a positive integer, and [`ClusterError::InvalidConfig`] when it
    /// exceeds [`MAX_SHARDS`].
    pub fn from_env() -> Result<Self> {
        // The backend knob is read lazily by the kernels (where garbage can
        // only fail fast); validating it here instead surfaces a typo as the
        // cluster's own typed error before any worker thread spawns.
        fuse_backend::BackendChoice::from_env().map_err(|e| ClusterError::InvalidEnv {
            name: e.name,
            value: e.value,
            expected: e.expected,
        })?;
        let mut config = ClusterConfig::default();
        if let Some(shards) = env_usize(FUSE_SHARDS_ENV)? {
            config.shards = shards;
        }
        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration, including the shard-relevant
    /// [`ServeConfig`] fields every worker would otherwise reject at spawn
    /// time (`max_batch >= 1`, a positive budget).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ClusterError::InvalidConfig("shards must be nonzero".into()));
        }
        if self.shards > MAX_SHARDS {
            return Err(ClusterError::InvalidConfig(format!(
                "shards must be at most {MAX_SHARDS}, got {}",
                self.shards
            )));
        }
        if self.queue_capacity == 0 {
            return Err(ClusterError::InvalidConfig("queue_capacity must be nonzero".into()));
        }
        if self.channel_capacity == 0 {
            return Err(ClusterError::InvalidConfig("channel_capacity must be nonzero".into()));
        }
        // Check the shard-relevant serve fields here too, so a bad engine
        // config is rejected before any worker thread spawns — with the
        // cluster's own typed error.
        if self.serve.max_batch == 0 {
            return Err(ClusterError::InvalidConfig(
                "serve.max_batch must be at least 1 (each shard micro-batches)".into(),
            ));
        }
        self.serve.validate().map_err(|e| ClusterError::InvalidConfig(e.to_string()))
    }
}

/// Reads a positive-integer environment knob, distinguishing *unset*
/// (`Ok(None)`) from *unparseable* — which is a typed error naming the knob,
/// never a panic or a silent fallback.
///
/// This is a thin wrapper over the workspace-wide helper
/// ([`fuse_parallel::env::env_usize`], which `FUSE_THREADS`,
/// `FUSE_PAR_MIN_WORK` and `FUSE_BACKEND` also parse through), mapping its
/// error into the cluster's own [`ClusterError::InvalidEnv`].
///
/// # Errors
///
/// Returns [`ClusterError::InvalidEnv`] when the variable is set but does not
/// parse as an integer `>= 1`.
pub fn env_usize(name: &str) -> Result<Option<usize>> {
    fuse_parallel::env::env_usize(name).map_err(|e| ClusterError::InvalidEnv {
        name: e.name,
        value: e.value,
        expected: e.expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ClusterConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values_with_typed_errors() {
        let bad = |f: fn(&mut ClusterConfig)| {
            let mut c = ClusterConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(matches!(bad(|c| c.shards = 0), Err(ClusterError::InvalidConfig(_))));
        assert!(matches!(bad(|c| c.shards = MAX_SHARDS + 1), Err(ClusterError::InvalidConfig(_))));
        assert!(matches!(bad(|c| c.queue_capacity = 0), Err(ClusterError::InvalidConfig(_))));
        assert!(matches!(bad(|c| c.channel_capacity = 0), Err(ClusterError::InvalidConfig(_))));
        let err = bad(|c| c.serve.max_batch = 0).unwrap_err();
        assert!(err.to_string().contains("max_batch"), "serve fields are validated here too");
        assert!(matches!(bad(|c| c.serve.budget_ms = -1.0), Err(ClusterError::InvalidConfig(_))));
    }

    #[test]
    fn env_usize_distinguishes_unset_bad_and_good() {
        // Process-global env vars: use names no other test touches.
        assert_eq!(env_usize("FUSE_TEST_UNSET_KNOB").unwrap(), None);
        std::env::set_var("FUSE_TEST_GOOD_KNOB", " 3 ");
        assert_eq!(env_usize("FUSE_TEST_GOOD_KNOB").unwrap(), Some(3));
        std::env::set_var("FUSE_TEST_BAD_KNOB", "2.5");
        let err = env_usize("FUSE_TEST_BAD_KNOB").unwrap_err();
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: "FUSE_TEST_BAD_KNOB".into(),
                value: "2.5".into(),
                expected: "a positive integer",
            }
        );
        std::env::set_var("FUSE_TEST_ZERO_KNOB", "0");
        assert!(env_usize("FUSE_TEST_ZERO_KNOB").is_err(), "zero shards would deadlock");
        std::env::remove_var("FUSE_TEST_GOOD_KNOB");
        std::env::remove_var("FUSE_TEST_BAD_KNOB");
        std::env::remove_var("FUSE_TEST_ZERO_KNOB");
    }

    #[test]
    fn from_env_validates_the_backend_knob_with_a_typed_error() {
        // Pin the kernels' one-time FUSE_BACKEND read first so the temporary
        // garbage below can never leak into the process-wide choice (the
        // config validation re-parses the variable on every call).
        let pinned = fuse_backend::active_choice();
        let previous = std::env::var("FUSE_BACKEND").ok();
        std::env::set_var("FUSE_BACKEND", "fpga");
        let err = ClusterConfig::from_env().unwrap_err();
        match previous {
            Some(v) => std::env::set_var("FUSE_BACKEND", v),
            None => std::env::remove_var("FUSE_BACKEND"),
        }
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: "FUSE_BACKEND".into(),
                value: "fpga".into(),
                expected: "one of scalar|simd|auto|simd-fma",
            }
        );
        assert_eq!(fuse_backend::active_choice(), pinned, "the cached choice must be untouched");
    }

    #[test]
    fn policy_names_render() {
        assert_eq!(BackpressurePolicy::Block.to_string(), "block");
        assert_eq!(BackpressurePolicy::DropOldest.to_string(), "drop-oldest");
        assert_eq!(BackpressurePolicy::MergeFrames.to_string(), "merge-frames");
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }
}
