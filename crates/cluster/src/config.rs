//! Cluster configuration: shard count, per-SLO-class backpressure, and typed
//! environment-knob parsing.

use fuse_serve::{ServeConfig, SloClass};

use crate::error::ClusterError;
use crate::Result;

/// Environment knob selecting the number of engine shards.
pub const FUSE_SHARDS_ENV: &str = "FUSE_SHARDS";

/// Environment knob enabling the adaptive backpressure controller
/// ([`crate::AdaptiveController`]). Off (`0`) by default so the committed
/// goldens pin the static capacities.
pub const FUSE_ADAPTIVE_ENV: &str = "FUSE_ADAPTIVE";

/// Environment knob assigning a default [`SloClass`] to sessions opened
/// without one (`clinical` / `interactive` / `dashboard`). Unset sessions
/// fall back to the cluster-default backpressure.
pub const FUSE_SLO_DEFAULT_ENV: &str = "FUSE_SLO_DEFAULT";

/// Hard ceiling on the shard count: one engine per core is the intended
/// deployment shape, so anything past this is a configuration mistake.
pub const MAX_SHARDS: usize = 64;

/// The environment knobs owned by `fuse-cluster` (see
/// [`fuse_parallel::env::KnobDef`] for how these feed the generated
/// `README.md` reference table).
pub const CLUSTER_KNOBS: &[fuse_parallel::env::KnobDef] = &[
    fuse_parallel::env::KnobDef {
        name: FUSE_SHARDS_ENV,
        default: "1",
        accepts: "positive integer (at most 64)",
        description: "Engine shards the cluster router fans sessions out across",
    },
    fuse_parallel::env::KnobDef {
        name: FUSE_ADAPTIVE_ENV,
        default: "0",
        accepts: "0 or 1",
        description:
            "Adaptive backpressure: drive per-SLO-class queue capacity from the observed p99",
    },
    fuse_parallel::env::KnobDef {
        name: FUSE_SLO_DEFAULT_ENV,
        default: "unset (cluster-default backpressure)",
        accepts: "one of clinical / interactive / dashboard",
        description: "SLO class assigned to sessions opened without an explicit class",
    },
];

/// Default per-session queue capacity: at the 10 Hz frame rate a session
/// with more than [`DEFAULT_QUEUE_CAPACITY`] frames queued is already most of
/// a second behind the 100 ms budget, so this is where the backpressure
/// policy kicks in.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8;

/// Default bound of each shard's command channel (the transport between
/// submitting threads and the worker loop).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// What a shard does when a session's pending queue reaches the configured
/// capacity and another frame arrives for it.
///
/// | Policy        | Latency       | Loss                        | Use when |
/// |---------------|---------------|-----------------------------|----------|
/// | `Block`       | grows         | none                        | every frame matters (clinical capture) |
/// | `DropOldest`  | bounded       | oldest frame per overflow   | freshest-pose-wins dashboards |
/// | `MergeFrames` | bounded       | burst coalesced to newest   | bursty producers, keep one representative |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Serve the backlog before accepting the new frame: the shard steps its
    /// engine until the session is under capacity again. Nothing is lost;
    /// submit latency absorbs the overload. Because `Block` never discards
    /// work, a caller that submits without ever collecting responses trades
    /// memory for the losslessness — collect (`poll_responses`/`drain`) at
    /// least as often as you submit bursts.
    #[default]
    Block,
    /// Drop the session's oldest pending frame to make room. Bounded
    /// latency; the drop is counted and surfaced in the cluster metrics.
    DropOldest,
    /// Collapse the session's pending queue to its newest frame (which
    /// already carries the fused history of the burst) and count the merged
    /// frames.
    MergeFrames,
}

impl BackpressurePolicy {
    /// Short lowercase policy name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop-oldest",
            BackpressurePolicy::MergeFrames => "merge-frames",
        }
    }
}

impl std::fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One class's backpressure behaviour: the policy and the per-session
/// pending-frame capacity it kicks in at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassBackpressure {
    /// What happens when a session's queue reaches capacity.
    pub policy: BackpressurePolicy,
    /// Per-session pending-frame capacity at which the policy applies.
    pub queue_capacity: usize,
}

impl ClassBackpressure {
    /// The built-in preset of an SLO class (used when the spec carries no
    /// explicit override for it):
    ///
    /// | Class         | Policy        | Capacity |
    /// |---------------|---------------|----------|
    /// | `Clinical`    | `Block`       | 16       |
    /// | `Interactive` | `MergeFrames` | 8        |
    /// | `Dashboard`   | `DropOldest`  | 4        |
    pub fn preset(class: SloClass) -> Self {
        match class {
            SloClass::Clinical => {
                ClassBackpressure { policy: BackpressurePolicy::Block, queue_capacity: 16 }
            }
            SloClass::Interactive => {
                ClassBackpressure { policy: BackpressurePolicy::MergeFrames, queue_capacity: 8 }
            }
            SloClass::Dashboard => {
                ClassBackpressure { policy: BackpressurePolicy::DropOldest, queue_capacity: 4 }
            }
        }
    }
}

impl Default for ClassBackpressure {
    fn default() -> Self {
        ClassBackpressure {
            policy: BackpressurePolicy::default(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// The cluster's backpressure specification: one cluster-wide default (what
/// the old flat `queue_capacity`/`policy` pair expressed) plus optional
/// per-SLO-class overrides. Sessions opened *with* a class resolve to their
/// class's override — or its built-in preset when no override is given;
/// sessions without a class use the cluster default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackpressureSpec {
    /// Behaviour of sessions without an SLO class.
    pub default: ClassBackpressure,
    /// Override for [`SloClass::Clinical`] sessions (preset otherwise).
    pub clinical: Option<ClassBackpressure>,
    /// Override for [`SloClass::Interactive`] sessions (preset otherwise).
    pub interactive: Option<ClassBackpressure>,
    /// Override for [`SloClass::Dashboard`] sessions (preset otherwise).
    pub dashboard: Option<ClassBackpressure>,
}

impl BackpressureSpec {
    /// A spec applying one policy/capacity pair to *every* session, classed
    /// or not — the exact behaviour of the old flat cluster-wide knob.
    pub fn uniform(policy: BackpressurePolicy, queue_capacity: usize) -> Self {
        let class = ClassBackpressure { policy, queue_capacity };
        BackpressureSpec {
            default: class,
            clinical: Some(class),
            interactive: Some(class),
            dashboard: Some(class),
        }
    }

    /// The explicit override slot of a class.
    pub fn override_for(&self, class: SloClass) -> Option<ClassBackpressure> {
        match class {
            SloClass::Clinical => self.clinical,
            SloClass::Interactive => self.interactive,
            SloClass::Dashboard => self.dashboard,
        }
    }

    /// Resolves the backpressure a session is subject to: its class's
    /// override, the class preset, or — for an unclassed session — the
    /// cluster default.
    pub fn resolve(&self, class: Option<SloClass>) -> ClassBackpressure {
        match class {
            None => self.default,
            Some(c) => self.override_for(c).unwrap_or_else(|| ClassBackpressure::preset(c)),
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] naming the offending class
    /// when any capacity (default or override) is zero.
    pub fn validate(&self) -> Result<()> {
        if self.default.queue_capacity == 0 {
            return Err(ClusterError::InvalidConfig(
                "backpressure.default.queue_capacity must be nonzero".into(),
            ));
        }
        for class in SloClass::ALL {
            if let Some(over) = self.override_for(class) {
                if over.queue_capacity == 0 {
                    return Err(ClusterError::InvalidConfig(format!(
                        "backpressure.{class}.queue_capacity must be nonzero"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Configuration of a [`crate::ClusterRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Per-shard engine configuration (every shard is identical).
    pub serve: ServeConfig,
    /// Number of engine shards; sessions map to shards deterministically by
    /// `session_id % shards`.
    pub shards: usize,
    /// Per-session backpressure: a cluster default plus per-SLO-class
    /// overrides (replacing the old flat `queue_capacity`/`policy` pair).
    pub backpressure: BackpressureSpec,
    /// SLO class assigned to sessions opened without one (`FUSE_SLO_DEFAULT`);
    /// `None` leaves them on the cluster-default backpressure.
    pub default_slo: Option<SloClass>,
    /// When `true`, the router builds an [`crate::AdaptiveController`] and
    /// [`crate::ClusterRouter::autotune`] drives each class's effective
    /// queue capacity from the observed p99 (`FUSE_ADAPTIVE`). Off by
    /// default: the committed goldens pin the static capacities.
    pub adaptive: bool,
    /// Bound of each shard's submit channel.
    pub channel_capacity: usize,
    /// When `true` (the default), shard workers run [`fuse_serve::ServeEngine::step`]
    /// whenever their command queue is idle, so responses appear without an
    /// explicit flush — the asynchronous serving mode. When `false`, engines
    /// only step inside [`crate::ClusterRouter::drain`] (and inside a
    /// blocking submit), which makes backpressure decisions a pure function
    /// of the submit/drain schedule — the mode the deterministic
    /// backpressure golden tests pin.
    pub auto_step: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            serve: ServeConfig::default(),
            shards: 1,
            backpressure: BackpressureSpec::default(),
            default_slo: None,
            adaptive: false,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            auto_step: true,
        }
    }
}

impl ClusterConfig {
    /// The default configuration with the shard count, adaptive mode and
    /// default SLO class taken from `FUSE_SHARDS` / `FUSE_ADAPTIVE` /
    /// `FUSE_SLO_DEFAULT` (when set).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidEnv`] when a knob is set but does not
    /// parse, and [`ClusterError::InvalidConfig`] when `FUSE_SHARDS` exceeds
    /// [`MAX_SHARDS`].
    pub fn from_env() -> Result<Self> {
        // The backend knob is read lazily by the kernels (where garbage can
        // only fail fast); validating it here instead surfaces a typo as the
        // cluster's own typed error before any worker thread spawns.
        fuse_backend::BackendChoice::from_env().map_err(|e| ClusterError::InvalidEnv {
            name: e.name,
            value: e.value,
            expected: e.expected,
        })?;
        let mut config = ClusterConfig::default();
        if let Some(shards) = env_usize(FUSE_SHARDS_ENV)? {
            config.shards = shards;
        }
        if let Some(choice) =
            fuse_parallel::env::env_choice(FUSE_ADAPTIVE_ENV, &["0", "1"], "0 or 1").map_err(
                |e| ClusterError::InvalidEnv { name: e.name, value: e.value, expected: e.expected },
            )?
        {
            config.adaptive = choice == 1;
        }
        if let Ok(raw) = std::env::var(FUSE_SLO_DEFAULT_ENV) {
            match SloClass::parse(&raw) {
                Some(class) => config.default_slo = Some(class),
                None => {
                    return Err(ClusterError::InvalidEnv {
                        name: FUSE_SLO_DEFAULT_ENV.to_string(),
                        value: raw,
                        expected: "one of clinical / interactive / dashboard",
                    })
                }
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration, including the shard-relevant
    /// [`ServeConfig`] fields every worker would otherwise reject at spawn
    /// time (`max_batch >= 1`, a positive budget).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ClusterError::InvalidConfig("shards must be nonzero".into()));
        }
        if self.shards > MAX_SHARDS {
            return Err(ClusterError::InvalidConfig(format!(
                "shards must be at most {MAX_SHARDS}, got {}",
                self.shards
            )));
        }
        self.backpressure.validate()?;
        if self.channel_capacity == 0 {
            return Err(ClusterError::InvalidConfig("channel_capacity must be nonzero".into()));
        }
        // Check the shard-relevant serve fields here too, so a bad engine
        // config is rejected before any worker thread spawns — with the
        // cluster's own typed error.
        if self.serve.max_batch == 0 {
            return Err(ClusterError::InvalidConfig(
                "serve.max_batch must be at least 1 (each shard micro-batches)".into(),
            ));
        }
        self.serve.validate().map_err(|e| ClusterError::InvalidConfig(e.to_string()))
    }
}

/// Reads a positive-integer environment knob, distinguishing *unset*
/// (`Ok(None)`) from *unparseable* — which is a typed error naming the knob,
/// never a panic or a silent fallback.
///
/// This is a thin wrapper over the workspace-wide helper
/// ([`fuse_parallel::env::env_usize`], which `FUSE_THREADS`,
/// `FUSE_PAR_MIN_WORK` and `FUSE_BACKEND` also parse through), mapping its
/// error into the cluster's own [`ClusterError::InvalidEnv`].
///
/// # Errors
///
/// Returns [`ClusterError::InvalidEnv`] when the variable is set but does not
/// parse as an integer `>= 1`.
pub fn env_usize(name: &str) -> Result<Option<usize>> {
    fuse_parallel::env::env_usize(name).map_err(|e| ClusterError::InvalidEnv {
        name: e.name,
        value: e.value,
        expected: e.expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ClusterConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values_with_typed_errors() {
        let bad = |f: fn(&mut ClusterConfig)| {
            let mut c = ClusterConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(matches!(bad(|c| c.shards = 0), Err(ClusterError::InvalidConfig(_))));
        assert!(matches!(bad(|c| c.shards = MAX_SHARDS + 1), Err(ClusterError::InvalidConfig(_))));
        assert!(matches!(
            bad(|c| c.backpressure.default.queue_capacity = 0),
            Err(ClusterError::InvalidConfig(_))
        ));
        let err = bad(|c| {
            c.backpressure.dashboard = Some(ClassBackpressure {
                policy: BackpressurePolicy::DropOldest,
                queue_capacity: 0,
            })
        })
        .unwrap_err();
        assert!(err.to_string().contains("dashboard"), "the offending class must be named: {err}");
        assert!(matches!(bad(|c| c.channel_capacity = 0), Err(ClusterError::InvalidConfig(_))));
        let err = bad(|c| c.serve.max_batch = 0).unwrap_err();
        assert!(err.to_string().contains("max_batch"), "serve fields are validated here too");
        assert!(matches!(bad(|c| c.serve.budget_ms = -1.0), Err(ClusterError::InvalidConfig(_))));
    }

    #[test]
    fn spec_resolution_prefers_override_then_preset_then_default() {
        let mut spec = BackpressureSpec::default();
        assert_eq!(spec.resolve(None), ClassBackpressure::default());
        // No override: each class falls to its built-in preset.
        assert_eq!(spec.resolve(Some(SloClass::Clinical)).policy, BackpressurePolicy::Block);
        assert_eq!(spec.resolve(Some(SloClass::Clinical)).queue_capacity, 16);
        assert_eq!(
            spec.resolve(Some(SloClass::Interactive)).policy,
            BackpressurePolicy::MergeFrames
        );
        assert_eq!(spec.resolve(Some(SloClass::Dashboard)).policy, BackpressurePolicy::DropOldest);
        assert_eq!(spec.resolve(Some(SloClass::Dashboard)).queue_capacity, 4);
        // An override wins over the preset.
        let tight = ClassBackpressure { policy: BackpressurePolicy::Block, queue_capacity: 2 };
        spec.dashboard = Some(tight);
        assert_eq!(spec.resolve(Some(SloClass::Dashboard)), tight);
        // `uniform` reproduces the old flat knob for every class.
        let flat = BackpressureSpec::uniform(BackpressurePolicy::MergeFrames, 3);
        for class in [None, Some(SloClass::Clinical), Some(SloClass::Dashboard)] {
            assert_eq!(
                flat.resolve(class),
                ClassBackpressure { policy: BackpressurePolicy::MergeFrames, queue_capacity: 3 }
            );
        }
    }

    #[test]
    fn env_usize_distinguishes_unset_bad_and_good() {
        // Process-global env vars: use names no other test touches.
        assert_eq!(env_usize("FUSE_TEST_UNSET_KNOB").unwrap(), None);
        std::env::set_var("FUSE_TEST_GOOD_KNOB", " 3 ");
        assert_eq!(env_usize("FUSE_TEST_GOOD_KNOB").unwrap(), Some(3));
        std::env::set_var("FUSE_TEST_BAD_KNOB", "2.5");
        let err = env_usize("FUSE_TEST_BAD_KNOB").unwrap_err();
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: "FUSE_TEST_BAD_KNOB".into(),
                value: "2.5".into(),
                expected: "a positive integer",
            }
        );
        std::env::set_var("FUSE_TEST_ZERO_KNOB", "0");
        assert!(env_usize("FUSE_TEST_ZERO_KNOB").is_err(), "zero shards would deadlock");
        std::env::remove_var("FUSE_TEST_GOOD_KNOB");
        std::env::remove_var("FUSE_TEST_BAD_KNOB");
        std::env::remove_var("FUSE_TEST_ZERO_KNOB");
    }

    #[test]
    fn from_env_validates_the_backend_knob_with_a_typed_error() {
        // Pin the kernels' one-time FUSE_BACKEND read first so the temporary
        // garbage below can never leak into the process-wide choice (the
        // config validation re-parses the variable on every call).
        let pinned = fuse_backend::active_choice();
        let previous = std::env::var("FUSE_BACKEND").ok();
        std::env::set_var("FUSE_BACKEND", "fpga");
        let err = ClusterConfig::from_env().unwrap_err();
        match previous {
            Some(v) => std::env::set_var("FUSE_BACKEND", v),
            None => std::env::remove_var("FUSE_BACKEND"),
        }
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: "FUSE_BACKEND".into(),
                value: "fpga".into(),
                expected: "one of scalar|simd|auto|simd-fma",
            }
        );
        assert_eq!(fuse_backend::active_choice(), pinned, "the cached choice must be untouched");
    }

    #[test]
    fn adaptive_and_slo_knobs_parse_with_typed_errors() {
        // FUSE_ADAPTIVE: unset → off, "1" → on, garbage → typed error.
        assert!(!ClusterConfig::from_env().unwrap().adaptive);
        std::env::set_var(FUSE_ADAPTIVE_ENV, "1");
        assert!(ClusterConfig::from_env().unwrap().adaptive);
        std::env::set_var(FUSE_ADAPTIVE_ENV, "yes");
        let err = ClusterConfig::from_env().unwrap_err();
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: FUSE_ADAPTIVE_ENV.into(),
                value: "yes".into(),
                expected: "0 or 1",
            }
        );
        std::env::remove_var(FUSE_ADAPTIVE_ENV);

        // FUSE_SLO_DEFAULT: unset → none, a class name → that class,
        // garbage → typed error naming the accepted classes.
        assert_eq!(ClusterConfig::from_env().unwrap().default_slo, None);
        std::env::set_var(FUSE_SLO_DEFAULT_ENV, " Clinical ");
        assert_eq!(ClusterConfig::from_env().unwrap().default_slo, Some(SloClass::Clinical));
        std::env::set_var(FUSE_SLO_DEFAULT_ENV, "platinum");
        let err = ClusterConfig::from_env().unwrap_err();
        assert_eq!(
            err,
            ClusterError::InvalidEnv {
                name: FUSE_SLO_DEFAULT_ENV.into(),
                value: "platinum".into(),
                expected: "one of clinical / interactive / dashboard",
            }
        );
        std::env::remove_var(FUSE_SLO_DEFAULT_ENV);
    }

    #[test]
    fn policy_names_render() {
        assert_eq!(BackpressurePolicy::Block.to_string(), "block");
        assert_eq!(BackpressurePolicy::DropOldest.to_string(), "drop-oldest");
        assert_eq!(BackpressurePolicy::MergeFrames.to_string(), "merge-frames");
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }
}
