//! # fuse-cluster
//!
//! Sharded asynchronous serving for the FUSE pipeline: the layer that turns
//! the single-process [`fuse_serve::ServeEngine`] into a multi-shard router
//! built for heavy multi-user traffic, while keeping the workspace's
//! bit-reproducibility contract.
//!
//! ```text
//!                         ┌────────────────────────────┐
//!  radar I/O threads ───▶ │        ClusterRouter       │ ───▶ responses,
//!   submit(sess, frame)   │  session → shard (id % N)  │      re-sequenced by
//!                         └──┬─────────┬─────────┬─────┘      (session, frame)
//!                 bounded    │         │         │
//!                 channels   ▼         ▼         ▼
//!                        ┌──────┐  ┌──────┐  ┌──────┐
//!                        │shard0│  │shard1│  │shard2│   worker loops drive
//!                        │Engine│  │Engine│  │Engine│   step(), apply the
//!                        └──────┘  └──────┘  └──────┘   backpressure policy
//! ```
//!
//! * [`ClusterRouter`] — owns the shards, routes sessions deterministically
//!   (`session_id % shards`), fans hot-swaps out atomically (validate on
//!   every shard before committing on any) and re-sequences responses.
//! * [`BackpressureSpec`] — per-session backpressure resolved by SLO class
//!   ([`fuse_serve::SloClass`]): a cluster default plus per-class
//!   `(policy, capacity)` overrides, with built-in presets (`Clinical` →
//!   block at 16, `Interactive` → merge at 8, `Dashboard` → drop-oldest
//!   at 4). [`BackpressurePolicy`] is what fires at capacity: serve the
//!   backlog first (`Block`), evict the oldest frame (`DropOldest`), or
//!   coalesce the burst to its newest frame (`MergeFrames`). Every eviction
//!   is counted.
//! * [`AdaptiveController`] — opt-in (`FUSE_ADAPTIVE=1`) deterministic
//!   hysteresis controller driving each class's *effective* queue capacity
//!   from the observed p99 ([`ClusterRouter::autotune`]).
//! * [`ClusterMetrics`] — per-shard queue gauges and policy counters plus a
//!   cluster-level latency aggregation over every shard's recorder.
//! * [`ClusterError`] — typed errors end to end; bad env knobs
//!   (`FUSE_SHARDS=...`, `FUSE_ADAPTIVE=...`, `FUSE_SLO_DEFAULT=...`)
//!   surface as [`ClusterError::InvalidEnv`], never as panics.
//!
//! **Determinism.** A session lives entirely on one shard, per-sample
//! kernels are batch-composition independent, and [`ClusterRouter::drain`]
//! gathers in shard order and sorts by `(session, frame)` — so for a given
//! submit/drain schedule the externally observable response stream is
//! bit-identical for any `FUSE_SHARDS` and any `FUSE_THREADS`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod error;
pub mod metrics;
pub mod remote;
pub mod router;
mod worker;

pub use adaptive::{AdaptiveConfig, AdaptiveController, CapacityUpdate};
pub use config::{
    env_usize, BackpressurePolicy, BackpressureSpec, ClassBackpressure, ClusterConfig,
    CLUSTER_KNOBS, DEFAULT_CHANNEL_CAPACITY, DEFAULT_QUEUE_CAPACITY, FUSE_ADAPTIVE_ENV,
    FUSE_SHARDS_ENV, FUSE_SLO_DEFAULT_ENV, MAX_SHARDS,
};
pub use error::ClusterError;
pub use fuse_serve::{SessionConfig, SloClass};
pub use metrics::{ClusterMetrics, ShardGauge};
pub use remote::HostShard;
pub use router::{ClosedSession, ClusterRouter, DrainReport, ShardSpec, SwapReport};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Commonly used types for cluster call sites, alongside the serve-level
/// pieces an embedder needs.
pub mod prelude {
    pub use crate::adaptive::{AdaptiveConfig, AdaptiveController, CapacityUpdate};
    pub use crate::config::{
        BackpressurePolicy, BackpressureSpec, ClassBackpressure, ClusterConfig,
    };
    pub use crate::error::ClusterError;
    pub use crate::metrics::{ClusterMetrics, ShardGauge};
    pub use crate::router::{ClosedSession, ClusterRouter, DrainReport, SwapReport};
    pub use fuse_serve::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_core::{build_mars_cnn, ModelConfig};
    use fuse_radar::{PointCloudFrame, RadarPoint};

    fn frame(seed: u64, n: usize) -> PointCloudFrame {
        let points = (0..n)
            .map(|i| {
                let t = (seed as f32) * 0.1 + i as f32 * 0.03;
                RadarPoint::new(
                    t.sin() * 0.5,
                    2.0 + t.cos() * 0.2,
                    0.2 + i as f32 * 0.04,
                    0.1,
                    1.0 + t,
                )
            })
            .collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    fn tiny_router(shards: usize) -> ClusterRouter {
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ClusterConfig {
            serve: fuse_serve::ServeConfig {
                feature_map: fuse_dataset::FeatureMapBuilder::default(),
                ..fuse_serve::ServeConfig::default()
            },
            shards,
            ..ClusterConfig::default()
        };
        ClusterRouter::new(model, config).unwrap()
    }

    #[test]
    fn sessions_route_deterministically_and_round_trip() {
        let mut router = tiny_router(3);
        assert_eq!(router.shards(), 3);
        for id in [0u64, 1, 2, 3, 7] {
            assert_eq!(router.shard_of(id), (id % 3) as usize);
            router.open_session(SessionConfig::new(id)).unwrap();
        }
        assert_eq!(router.session_count(), 5);
        assert_eq!(
            router.open_session(SessionConfig::new(7)),
            Err(ClusterError::DuplicateSession(7))
        );
        assert_eq!(router.submit(99, frame(0, 4)), Err(ClusterError::UnknownSession(99)));

        for id in [0u64, 1, 2, 3, 7] {
            router.submit(id, frame(id, 8)).unwrap();
        }
        let report = router.drain().unwrap();
        assert_eq!(report.responses.len(), 5);
        let keys: Vec<(u64, u64)> =
            report.responses.iter().map(|r| (r.session_id, r.frame_index)).collect();
        assert_eq!(keys, [(0, 0), (1, 0), (2, 0), (3, 0), (7, 0)], "re-sequenced order");
        assert!(report.dropped.is_empty());
        assert!(report.merged.is_empty());

        let closed = router.close_session(3).unwrap();
        assert_eq!(closed.shard, 0);
        assert!(!closed.adapted);
        assert!(closed.unserved_frames.is_empty());
        assert_eq!(router.close_session(3), Err(ClusterError::UnknownSession(3)));
        router.shutdown();
    }

    #[test]
    fn closing_mid_stream_reports_unserved_frames() {
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ClusterConfig { shards: 2, auto_step: false, ..ClusterConfig::default() };
        let mut router = ClusterRouter::new(model, config).unwrap();
        router.open_session(SessionConfig::new(4)).unwrap();
        for i in 0..3 {
            router.submit(4, frame(i, 8)).unwrap();
        }
        // auto_step is off and no drain ran, so the frames are still queued.
        let closed = router.close_session(4).unwrap();
        assert_eq!(closed.unserved_frames, [0, 1, 2]);
        router.shutdown();
    }

    #[test]
    fn metrics_snapshot_covers_every_shard() {
        let mut router = tiny_router(2);
        router.open_session(SessionConfig::new(0)).unwrap();
        router.open_session(SessionConfig::new(1)).unwrap();
        router.submit(0, frame(0, 8)).unwrap();
        router.submit(1, frame(1, 8)).unwrap();
        router.drain().unwrap();
        let metrics = router.metrics().unwrap();
        assert_eq!(metrics.shards.len(), 2);
        assert_eq!(metrics.queue_depth(), 0);
        assert_eq!(metrics.responses(), 2);
        assert_eq!(metrics.dropped_frames(), 0);
        assert!(metrics.report.budget_ms > 0.0);
        router.shutdown();
    }
}
