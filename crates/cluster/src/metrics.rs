//! Cluster-level observability: aggregated latency plus per-shard gauges.
//!
//! Each shard worker keeps its engine's [`fuse_serve::LatencyRecorder`] and a
//! set of lifetime counters (drops, merges, blocked submits, steps,
//! responses). [`crate::ClusterRouter::metrics`] snapshots every shard,
//! absorbs the recorders in shard order into one cluster-level recorder, and
//! returns this report — so SLO accounting (drops under `DropOldest`,
//! coalesced bursts under `MergeFrames`, latency percentiles against the
//! 100 ms budget) reads from a single place.

use serde::{Deserialize, Serialize};

use fuse_serve::LatencyReport;

/// Point-in-time gauges and lifetime counters of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardGauge {
    /// Shard index.
    pub shard: usize,
    /// Number of sessions routed to this shard.
    pub sessions: usize,
    /// Total frames queued on the shard at snapshot time.
    pub queue_depth: usize,
    /// The session with the deepest queue at snapshot time, if any frames
    /// were pending.
    pub deepest_queue: Option<(u64, usize)>,
    /// Responses produced but not yet collected at snapshot time.
    pub ready: usize,
    /// Frames dropped by the `DropOldest` policy over the shard's lifetime.
    pub dropped_frames: u64,
    /// Frames coalesced away by the `MergeFrames` policy over the shard's
    /// lifetime.
    pub merged_frames: u64,
    /// Submits that had to serve backlog first under the `Block` policy.
    pub blocked_submits: u64,
    /// Engine steps executed.
    pub steps: u64,
    /// Responses produced.
    pub responses: u64,
    /// The shard's base-model version (identical across shards outside a
    /// fan-out swap).
    pub model_version: u64,
}

/// A cluster-wide metrics snapshot (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Latency percentiles aggregated over every shard's recorder, judged
    /// against the shared per-frame budget.
    pub report: LatencyReport,
    /// One gauge row per shard, in shard order.
    pub shards: Vec<ShardGauge>,
}

impl ClusterMetrics {
    /// Total frames dropped by backpressure across the cluster.
    pub fn dropped_frames(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_frames).sum()
    }

    /// Total frames merged away by backpressure across the cluster.
    pub fn merged_frames(&self) -> u64 {
        self.shards.iter().map(|s| s.merged_frames).sum()
    }

    /// Total submits that blocked on backlog across the cluster.
    pub fn blocked_submits(&self) -> u64 {
        self.shards.iter().map(|s| s.blocked_submits).sum()
    }

    /// Total frames queued across the cluster at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Total responses produced across the cluster.
    pub fn responses(&self) -> u64 {
        self.shards.iter().map(|s| s.responses).sum()
    }
}

impl std::fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<6} {:>8} {:>7} {:>7} {:>8} {:>8} {:>8} {:>6} {:>9}",
            "shard",
            "sessions",
            "queued",
            "ready",
            "dropped",
            "merged",
            "blocked",
            "steps",
            "responses"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:<6} {:>8} {:>7} {:>7} {:>8} {:>8} {:>8} {:>6} {:>9}",
                s.shard,
                s.sessions,
                s.queue_depth,
                s.ready,
                s.dropped_frames,
                s.merged_frames,
                s.blocked_submits,
                s.steps,
                s.responses
            )?;
        }
        write!(f, "{}", self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_serve::LatencyRecorder;

    fn gauge(shard: usize, dropped: u64, merged: u64, queued: usize) -> ShardGauge {
        ShardGauge {
            shard,
            sessions: 2,
            queue_depth: queued,
            deepest_queue: (queued > 0).then_some((7, queued)),
            ready: 0,
            dropped_frames: dropped,
            merged_frames: merged,
            blocked_submits: 1,
            steps: 10,
            responses: 20,
            model_version: 0,
        }
    }

    #[test]
    fn totals_sum_over_shards() {
        let metrics = ClusterMetrics {
            report: LatencyRecorder::new(100.0).report(),
            shards: vec![gauge(0, 3, 0, 2), gauge(1, 1, 5, 0)],
        };
        assert_eq!(metrics.dropped_frames(), 4);
        assert_eq!(metrics.merged_frames(), 5);
        assert_eq!(metrics.blocked_submits(), 2);
        assert_eq!(metrics.queue_depth(), 2);
        assert_eq!(metrics.responses(), 40);
        let text = metrics.to_string();
        assert!(text.contains("dropped"));
        assert!(text.contains("budget"));
    }

    #[test]
    fn metrics_round_trip_through_json() {
        let metrics = ClusterMetrics {
            report: LatencyRecorder::new(100.0).report(),
            shards: vec![gauge(0, 1, 2, 3)],
        };
        let json = serde_json::to_string(&metrics).unwrap();
        let back: ClusterMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }
}
