//! Error type for the cluster router.

use std::error::Error;
use std::fmt;

use fuse_serve::ServeError;

/// Error returned by fallible cluster operations.
///
/// Every mis-configuration — including bad environment knobs like
/// `FUSE_SHARDS=zero` — surfaces as a typed variant with a message naming
/// the offending knob and value, never as a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The cluster was configured inconsistently (zero shards, zero queue
    /// capacity, a serve config the shards would reject, …).
    InvalidConfig(String),
    /// An environment knob (e.g. `FUSE_SHARDS`, `FUSE_BACKEND`) did not
    /// parse.
    InvalidEnv {
        /// Name of the environment variable.
        name: String,
        /// The raw value that failed to parse.
        value: String,
        /// Human-readable description of the accepted values (e.g. `"a
        /// positive integer"`, `"one of scalar|simd|auto"`).
        expected: &'static str,
    },
    /// A frame or request referenced a session id no shard has open.
    UnknownSession(u64),
    /// A session with this id is already open somewhere in the cluster.
    DuplicateSession(u64),
    /// A shard's worker loop is gone (its thread exited or panicked), so the
    /// command could not be delivered or acknowledged.
    ShardUnavailable {
        /// Index of the unreachable shard.
        shard: usize,
        /// The operation that could not complete.
        during: &'static str,
    },
    /// A fan-out hot-swap was rolled back because one shard rejected the
    /// checkpoint; **no** shard changed weights.
    SwapAborted {
        /// Index of the first shard that rejected the checkpoint.
        shard: usize,
        /// Why the shard rejected it.
        source: ServeError,
    },
    /// A shard-level serving operation failed.
    Serve(ServeError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig(msg) => {
                write!(f, "invalid cluster configuration: {msg}")
            }
            ClusterError::InvalidEnv { name, value, expected } => {
                write!(f, "environment knob {name}={value:?} is invalid (expected {expected})")
            }
            ClusterError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ClusterError::DuplicateSession(id) => write!(f, "session {id} is already open"),
            ClusterError::ShardUnavailable { shard, during } => {
                write!(f, "shard {shard} is unavailable (worker exited) during {during}")
            }
            ClusterError::SwapAborted { shard, source } => {
                write!(f, "hot-swap aborted: shard {shard} rejected the checkpoint: {source}")
            }
            ClusterError::Serve(e) => write!(f, "shard error: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::SwapAborted { source, .. } => Some(source),
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::UnknownSession(id) => ClusterError::UnknownSession(id),
            ServeError::DuplicateSession(id) => ClusterError::DuplicateSession(id),
            other => ClusterError::Serve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_knob() {
        let e = ClusterError::InvalidEnv {
            name: "FUSE_SHARDS".into(),
            value: "many".into(),
            expected: "a positive integer",
        };
        let text = e.to_string();
        assert!(text.contains("FUSE_SHARDS"));
        assert!(text.contains("many"));
        assert!(text.contains("a positive integer"), "the fix hint must be rendered");
    }

    #[test]
    fn session_errors_map_through_from_serve() {
        assert_eq!(
            ClusterError::from(ServeError::UnknownSession(7)),
            ClusterError::UnknownSession(7)
        );
        assert_eq!(
            ClusterError::from(ServeError::DuplicateSession(3)),
            ClusterError::DuplicateSession(3)
        );
        let wrapped = ClusterError::from(ServeError::InvalidConfig("x".into()));
        assert!(matches!(wrapped, ClusterError::Serve(_)));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn swap_abort_names_the_shard_and_cause() {
        let e =
            ClusterError::SwapAborted { shard: 2, source: ServeError::InvalidConfig("bad".into()) };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
