//! A small bounded MPSC channel.
//!
//! The serving cluster (`fuse-cluster`) needs a submit path where radar I/O
//! threads hand frames to per-shard worker loops without ever blocking on
//! inference, and where a full queue is an explicit, policy-visible condition
//! rather than unbounded memory growth. The standard library offers
//! `std::sync::mpsc`, but its `SyncSender` cannot be polled for depth and its
//! error types carry no distinction the cluster cares about; more
//! importantly, the workspace keeps every concurrency primitive it relies on
//! for bit-reproducibility in one vendored place. This module is that
//! primitive: a Mutex + Condvar ring with blocking and non-blocking ends.
//!
//! Properties:
//!
//! * **Bounded.** [`bounded`] fixes the capacity up front; [`Sender::send`]
//!   blocks while the queue is full (transport backpressure), while
//!   [`Sender::try_send`] surfaces [`TrySendError::Full`] so callers can
//!   apply a drop/merge policy instead of waiting.
//! * **MPSC.** [`Sender`] is `Clone`; the single [`Receiver`] preserves FIFO
//!   order, which the cluster router relies on for its flush barriers (a
//!   flush command enqueued after N submits is handed to the worker after
//!   all N submits).
//! * **Disconnect-aware.** When every sender is dropped, `recv` drains the
//!   queue and then reports [`RecvError`]; when the receiver is dropped,
//!   sends fail fast instead of blocking forever.
//! * **Deadline-aware.** [`Receiver::recv_timeout`] bounds a blocking wait,
//!   which is what the wire transport's retransmission timers are built on.
//!
//! # Disconnect audit (lost-wakeup freedom)
//!
//! Every blocking wait here is a classic Mutex + Condvar loop, and the two
//! disconnect paths were audited against it:
//!
//! * *Last sender drops while a receiver blocks in `recv`/`recv_timeout`.*
//!   The drop handler decrements `senders` **under the lock**, then calls
//!   `not_empty.notify_all()`. The receiver either (a) is still holding the
//!   lock, in which case it observes `senders == 0` on its next loop check,
//!   or (b) is parked inside `wait`, in which case the notify (issued after
//!   the lock is released) wakes it and the re-check under the re-acquired
//!   lock observes the disconnect. There is no window where the count is
//!   decremented without a subsequent notify, so no receiver can sleep
//!   through the disconnect.
//! * *Receiver drops while senders block in `send`.* Symmetric: the drop
//!   handler sets `receiver_alive = false` under the lock and then calls
//!   `not_full.notify_all()`; every blocked sender re-checks
//!   `receiver_alive` first thing after waking and fails fast with the
//!   value handed back.
//!
//! Both paths use `notify_all`, not `notify_one`: several senders can block
//! on a full queue and (via `clone`/scoped threads) several waits can be
//! outstanding, and waking only one would strand the rest. The
//! `rapid_connect_disconnect_cycles_never_strand_a_thread` stress test pins
//! this by joining every worker thread under churn.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a bounded FIFO channel with room for `capacity` queued values
/// (clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a [`bounded`] channel; clone it for multiple
/// producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a [`bounded`] channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver of the channel was dropped; the value is handed back.
pub struct SendError<T>(pub T);

/// A non-blocking send failed.
pub enum TrySendError<T> {
    /// The queue is at capacity; the value is handed back.
    Full(T),
    /// The receiver was dropped; the value is handed back.
    Disconnected(T),
}

/// Every sender was dropped and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// A non-blocking receive found nothing to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders remain connected.
    Empty,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

/// A bounded blocking receive found nothing to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed while the queue stayed empty (senders remain
    /// connected — retrying may succeed).
    Timeout,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on an empty channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] (handing the value back) when the receiver was
    /// dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel lock poisoned");
        }
    }

    /// Enqueues `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when the queue is at capacity and
    /// [`TrySendError::Disconnected`] when the receiver was dropped; both
    /// hand the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel lock poisoned").senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a receiver blocked on an empty queue so it can observe the
            // disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest value, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once every sender was dropped *and* the queue is
    /// drained (queued values are always delivered first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }

    /// Dequeues the oldest value, blocking at most `timeout` while the
    /// channel is empty.
    ///
    /// Queued values are always delivered first, even after a disconnect.
    /// This is the primitive the wire transport's stop-and-wait
    /// retransmission timer is built on: a timeout means "nothing arrived,
    /// retransmit", a disconnect means "the peer is gone for good".
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] when the deadline passes with
    /// the queue still empty, and [`RecvTimeoutError::Disconnected`] once
    /// every sender was dropped and the queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // A spurious wakeup just re-enters the loop with the remaining
            // slice of the deadline; the final `now >= deadline` check above
            // is what terminates, not the Condvar's own timeout flag.
            (inner, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel lock poisoned");
        }
    }

    /// Dequeues the oldest value without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is queued and
    /// [`TryRecvError::Disconnected`] when additionally every sender was
    /// dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        match inner.queue.pop_front() {
            Some(value) => {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of currently queued values.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("channel lock poisoned").queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        inner.receiver_alive = false;
        drop(inner);
        // Wake every sender blocked on a full queue so they can fail fast.
        self.shared.not_full.notify_all();
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_reports_full_and_hands_the_value_back() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn send_blocks_until_the_receiver_makes_room() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        let producer = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        producer.join().unwrap();
    }

    #[test]
    fn dropping_all_senders_drains_then_disconnects() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        tx2.send(8).unwrap();
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_the_receiver_fails_senders_fast() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        match tx.try_send(2) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 2),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        let producer = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(producer.join().unwrap(), "the blocked send must fail once the receiver is gone");
    }

    #[test]
    fn recv_timeout_times_out_then_delivers_then_disconnects() {
        let (tx, rx) = bounded(2);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(41).unwrap();
        tx.send(42).unwrap();
        drop(tx);
        // Queued values drain first even though every sender is gone.
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(41));
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(42));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_when_a_value_arrives_late() {
        let (tx, rx) = bounded(1);
        let producer = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            tx.send(7u64).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
        producer.join().unwrap();
    }

    #[test]
    fn recv_timeout_observes_a_late_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        let producer = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
        });
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Err(RecvTimeoutError::Disconnected)
        );
        producer.join().unwrap();
    }

    /// Disconnect-path stress test: many short-lived channels per round,
    /// with producers blocked mid-`send` on full queues when the receiver
    /// drops, and receivers blocked mid-`recv`/`recv_timeout` on empty
    /// queues when the last sender drops. A lost wakeup on either path
    /// shows up as a join that never returns (the test then times out).
    #[test]
    fn rapid_connect_disconnect_cycles_never_strand_a_thread() {
        for round in 0..200u64 {
            // Phase A: receiver drops while producers are mid-send on a
            // full queue.
            let (tx, rx) = bounded(1);
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        // Some sends succeed, some fail on disconnect; all
                        // must return either way.
                        for i in 0..4u64 {
                            let _ = tx.send(round * 100 + p * 10 + i);
                        }
                    })
                })
                .collect();
            drop(tx);
            // Consume a couple of values (sometimes zero work happens
            // before the drop — that interleaving is the point).
            let _ = rx.try_recv();
            let _ = rx.recv_timeout(std::time::Duration::from_micros(50));
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }

            // Phase B: last sender drops while consumers are mid-recv on an
            // empty queue.
            let (tx, rx) = bounded(4);
            let rx = std::sync::Arc::new(rx);
            let consumer = {
                let rx = std::sync::Arc::clone(&rx);
                thread::spawn(move || {
                    let mut got = 0u64;
                    loop {
                        match rx.recv_timeout(std::time::Duration::from_secs(10)) {
                            Ok(_) => got += 1,
                            Err(RecvTimeoutError::Disconnected) => return got,
                            Err(RecvTimeoutError::Timeout) => {
                                panic!("10 s timeout in a disconnect stress round = lost wakeup")
                            }
                        }
                    }
                })
            };
            let sent = round % 3;
            for i in 0..sent {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(consumer.join().unwrap(), sent);
        }
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(4);
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..25u64 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 100, "every sent value arrives exactly once");
    }
}
