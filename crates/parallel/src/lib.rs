//! # fuse-parallel
//!
//! A small, dependency-free, work-stealing-free scoped thread pool that backs
//! every parallel hot path in the FUSE workspace: the row-parallel GEMM
//! kernels and batch-parallel im2col convolutions in `fuse-tensor`, and the
//! per-episode task fan-out of the meta-trainer in `fuse-core`.
//!
//! ## Design
//!
//! * **One global pool, lazily grown.** Worker threads are spawned on first
//!   use and block on a shared FIFO injector queue (no per-worker deques, no
//!   stealing — contention on the queue lock is negligible at the task
//!   granularity the kernels use: one task per thread per kernel call).
//! * **Fork-join scopes over the caller's stack.** [`scope`],
//!   [`par_chunks_mut`], [`par_map`] and [`par_map_index`] submit borrowing
//!   closures, the calling thread executes its own share, drains the queue
//!   while waiting, and returns only after every submitted task completed —
//!   so borrows of caller-owned data are sound.
//! * **Bit-reproducible by construction.** Every primitive assigns work as
//!   *indexed* units (chunk index, item index) whose per-unit computation is
//!   independent of how units are banded across threads, and results are
//!   always merged in index order. A kernel built on these primitives
//!   produces bit-identical output for any thread count, which is what keeps
//!   the workspace's seed-exact tests honest under `FUSE_THREADS=N`.
//! * **No nested dispatch.** A task running on a pool worker executes nested
//!   parallel primitives inline (serially). This bounds queue depth and makes
//!   deadlock impossible: workers never block on other tasks.
//!
//! ## Configuration
//!
//! * `FUSE_THREADS` — thread count used by all primitives; defaults to
//!   [`std::thread::available_parallelism`]. Read once per process.
//! * [`with_threads`] — scoped per-thread override, used by the equivalence
//!   property tests to compare `threads = 1` against `threads = 4` inside one
//!   process (proptest runs pin the serial side this way rather than relying
//!   on the environment).
//! * `FUSE_PAR_MIN_WORK` / [`with_min_parallel_work`] — the work threshold
//!   (in fused multiply-adds or comparable scalar op counts) below which
//!   [`parallel_beneficial`] tells kernels to stay serial.
//!
//! Besides the fork-join primitives, the crate ships [`channel`], a bounded
//! MPSC channel used by the `fuse-cluster` router as its asynchronous submit
//! path (frame producers never block on inference; a full queue is an
//! explicit condition backpressure policies can act on).

pub mod channel;
pub mod env;

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Hard ceiling on the configured thread count; values above this are
/// clamped. Generous for any realistic host while bounding pool growth.
pub const MAX_THREADS: usize = 256;

/// Default value of the `FUSE_PAR_MIN_WORK` threshold: roughly the number of
/// scalar multiply-adds below which dispatch overhead (~10 µs) outweighs the
/// parallel speedup on commodity cores.
pub const DEFAULT_MIN_PARALLEL_WORK: usize = 32_768;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowing task collected by [`scope`]; erased to `'static` only inside
/// `run_tasks`, which guarantees completion before returning.
type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

thread_local! {
    /// Set while a pool worker (or the caller, while draining the queue)
    /// executes a task: nested primitives run inline instead of dispatching.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Scoped override installed by [`with_threads`].
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Scoped override installed by [`with_min_parallel_work`].
    static MIN_WORK_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Inheritable execution-context word (see [`inherited_context`]).
    static INHERITED_CONTEXT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The current thread's inheritable execution-context word.
///
/// Unlike the thread-count/work-threshold overrides (which only matter on
/// the *dispatching* thread), this word is captured by every fork-join
/// dispatch and re-installed around each task on whichever pool worker runs
/// it, so a scoped override crosses the thread boundary. The word is
/// deliberately a bare `usize` so this crate stays at the bottom of the
/// dependency stack — and it is currently **reserved by `fuse-backend`**,
/// which stores the active kernel-backend choice in it (and rejects foreign
/// values in debug builds). A second consumer needs a keyed or structured
/// context, not another claim on this word.
pub fn inherited_context() -> Option<usize> {
    INHERITED_CONTEXT.with(|c| c.get())
}

/// Runs `f` with the inheritable context word set to `value` for the current
/// thread (restored on exit, panic included). Work dispatched inside `f`
/// carries the word into its pool tasks.
pub fn with_inherited_context<R>(value: Option<usize>, f: impl FnOnce() -> R) -> R {
    let _restore = set_scoped(&INHERITED_CONTEXT, value);
    f()
}

/// Thread count configured for the process: `FUSE_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
///
/// Garbage in the knob used to be silently ignored; it now fails fast with
/// the same typed [`env::InvalidEnv`] message the cluster and backend
/// configuration surfaces return, so a deployment typo cannot quietly run
/// with the wrong thread count.
fn configured_threads() -> usize {
    static CONFIG: OnceLock<usize> = OnceLock::new();
    *CONFIG.get_or_init(|| {
        match env::env_usize("FUSE_THREADS") {
            Ok(Some(n)) => n,
            Ok(None) => thread::available_parallelism().map_or(1, |n| n.get()),
            Err(e) => panic!("{e}"),
        }
        .min(MAX_THREADS)
    })
}

fn configured_min_work() -> usize {
    static CONFIG: OnceLock<usize> = OnceLock::new();
    *CONFIG.get_or_init(|| match env::env_usize_allow_zero("FUSE_PAR_MIN_WORK") {
        Ok(Some(n)) => n,
        Ok(None) => DEFAULT_MIN_PARALLEL_WORK,
        Err(e) => panic!("{e}"),
    })
}

/// The number of threads parallel primitives will use for work dispatched
/// from the current thread (the [`with_threads`] override, else
/// `FUSE_THREADS`, else available parallelism).
pub fn available_threads() -> usize {
    THREADS_OVERRIDE.with(|o| o.get()).unwrap_or_else(configured_threads)
}

/// The minimum per-call work (scalar op count) for which kernels should
/// dispatch in parallel rather than run serially.
pub fn min_parallel_work() -> usize {
    MIN_WORK_OVERRIDE.with(|o| o.get()).unwrap_or_else(configured_min_work)
}

/// `true` when a kernel performing `work` scalar operations should dispatch
/// to the pool: enough threads, enough work, and not already inside a task.
pub fn parallel_beneficial(work: usize) -> bool {
    available_threads() > 1 && work >= min_parallel_work() && !IN_TASK.with(|t| t.get())
}

struct RestoreCell<T: Copy + 'static> {
    cell: &'static thread::LocalKey<Cell<T>>,
    previous: T,
}

impl<T: Copy + 'static> Drop for RestoreCell<T> {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.previous));
    }
}

fn set_scoped<T: Copy + 'static>(
    cell: &'static thread::LocalKey<Cell<T>>,
    value: T,
) -> RestoreCell<T> {
    let previous = cell.with(|c| c.replace(value));
    RestoreCell { cell, previous }
}

/// Runs `f` with the thread count pinned to `n` (clamped to
/// `1..=`[`MAX_THREADS`]) for work dispatched from the current thread.
///
/// This is the hook the serial-vs-parallel equivalence tests use: the same
/// kernel invoked under `with_threads(1, ..)` and `with_threads(4, ..)` must
/// produce bit-identical results.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _restore = set_scoped(&THREADS_OVERRIDE, Some(n.clamp(1, MAX_THREADS)));
    f()
}

/// Runs `f` with the [`min_parallel_work`] threshold pinned to `work` for the
/// current thread. Tests pass `0` to force tiny inputs through the parallel
/// path.
pub fn with_min_parallel_work<R>(work: usize, f: impl FnOnce() -> R) -> R {
    let _restore = set_scoped(&MIN_WORK_OVERRIDE, Some(work));
    f()
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    spawned: Mutex<usize>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        })
    }

    /// Grows the worker set to at least `target` threads (capped at
    /// [`MAX_THREADS`]`- 1`; the caller thread is always the extra one).
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS - 1);
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            thread::Builder::new()
                .name(format!("fuse-parallel-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning pool worker failed");
            *spawned += 1;
        }
    }

    fn submit(&self, jobs: Vec<Job>) {
        let mut queue = self.shared.queue.lock().expect("pool queue lock poisoned");
        queue.extend(jobs);
        drop(queue);
        self.shared.job_ready.notify_all();
    }

    fn try_pop(&self) -> Option<Job> {
        self.shared.queue.lock().expect("pool queue lock poisoned").pop_front()
    }
}

fn worker_loop(shared: &PoolShared) {
    IN_TASK.with(|t| t.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_ready.wait(queue).expect("pool queue lock poisoned");
            }
        };
        // Jobs are wrapped in `catch_unwind` by `run_tasks`, so a panicking
        // task cannot take the worker down.
        job();
    }
}

/// Completion latch for one fork-join dispatch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch lock poisoned");
        }
    }
}

/// Executes `tasks` to completion, using up to [`available_threads`] threads.
///
/// The first task runs on the calling thread; the rest are submitted to the
/// pool. The caller then drains the queue (executing whatever is pending,
/// possibly tasks of concurrent scopes) and finally blocks until every task
/// of *this* dispatch finished. Panics in any task are re-raised here.
fn run_tasks(tasks: Vec<ScopedTask<'_>>) {
    let mut tasks = tasks;
    if tasks.is_empty() {
        return;
    }
    let threads = available_threads();
    if tasks.len() == 1 || threads <= 1 || IN_TASK.with(|t| t.get()) {
        for task in tasks {
            task();
        }
        return;
    }

    let own_task = tasks.remove(0);
    let latch = Latch::new(tasks.len());
    // Captured on the dispatching thread; re-installed around every task so
    // scoped context (e.g. the fuse-backend choice) survives the hop onto a
    // pool worker.
    let context = inherited_context();
    let jobs: Vec<Job> = tasks
        .into_iter()
        .map(|task| {
            // SAFETY: the latch guarantees every submitted job has finished
            // before `run_tasks` returns, so the `'env` borrows captured by
            // the task never outlive this call despite the `'static` erasure.
            let task: ScopedTask<'static> = unsafe { std::mem::transmute(task) };
            let latch = Arc::clone(&latch);
            Box::new(move || {
                let task = AssertUnwindSafe(task);
                let run = || with_inherited_context(context, task.0);
                if catch_unwind(AssertUnwindSafe(run)).is_err() {
                    latch.panicked.store(true, Ordering::Release);
                }
                latch.complete_one();
            }) as Job
        })
        .collect();

    let pool = Pool::global();
    pool.ensure_workers(threads - 1);
    pool.submit(jobs);

    // Run our own share, then help drain the queue instead of idling. Tasks
    // executed here are flagged IN_TASK so nested primitives stay inline.
    let own_result = {
        let _in_task = set_scoped(&IN_TASK, true);
        let own_result = catch_unwind(AssertUnwindSafe(own_task));
        while let Some(job) = pool.try_pop() {
            job();
        }
        own_result
    };

    latch.wait();
    match own_result {
        Err(payload) => resume_unwind(payload),
        Ok(()) if latch.panicked.load(Ordering::Acquire) => {
            panic!("a fuse-parallel task panicked");
        }
        Ok(()) => {}
    }
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

/// Collector of borrowing tasks for one fork-join [`scope`].
pub struct Scope<'env> {
    tasks: Vec<ScopedTask<'env>>,
}

impl<'env> Scope<'env> {
    /// Registers a task; all tasks run (possibly in parallel) when the
    /// enclosing [`scope`] call returns control to the runtime.
    pub fn spawn(&mut self, task: impl FnOnce() + Send + 'env) {
        self.tasks.push(Box::new(task));
    }
}

/// Fork-join scope: collect tasks with [`Scope::spawn`], then execute all of
/// them — borrowing from the enclosing stack frame — before returning.
///
/// ```
/// let mut left = 0u64;
/// let mut right = 0u64;
/// fuse_parallel::scope(|s| {
///     s.spawn(|| left = (0..1000).sum());
///     s.spawn(|| right = (1000..2000).sum());
/// });
/// assert!(left < right);
/// ```
pub fn scope<'env>(f: impl FnOnce(&mut Scope<'env>)) {
    let mut scope = Scope { tasks: Vec::new() };
    f(&mut scope);
    run_tasks(scope.tasks);
}

// ---------------------------------------------------------------------------
// Data-parallel primitives
// ---------------------------------------------------------------------------

/// Splits the band `0..count` into at most `parts` contiguous ranges of
/// near-equal length, in order.
fn bands(count: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, count.max(1));
    let base = count / parts;
    let extra = count % parts;
    let mut start = 0;
    (0..parts)
        .map(|b| {
            let len = base + usize::from(b < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs `f(chunk_index, chunk)` over consecutive `chunk_len`-sized chunks of
/// `data`, distributing contiguous bands of chunks across threads.
///
/// Each chunk is written by exactly one task and `f` receives the same
/// `(index, chunk)` pairs regardless of thread count, so any deterministic
/// `f` yields bit-identical results for every `FUSE_THREADS` value.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or any task panics.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be nonzero");
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks <= 1 || available_threads() <= 1 || IN_TASK.with(|t| t.get()) {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let f = &f;
    let mut tasks: Vec<ScopedTask<'_>> = Vec::new();
    for band in bands(n_chunks, available_threads()).into_iter().rev() {
        let tail = chunks.split_off(band.start);
        tasks.push(Box::new(move || {
            for (i, chunk) in tail {
                f(i, chunk);
            }
        }));
    }
    tasks.reverse();
    run_tasks(tasks);
}

/// Maps `f(index)` over `0..count` in parallel, returning results in index
/// order. The per-index computation and the merge order are independent of
/// the thread count, so deterministic `f` gives bit-identical output for any
/// `FUSE_THREADS`.
pub fn par_map_index<R, F>(count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    let f = &f;
    par_chunks_mut(&mut out, 1, |i, slot| slot[0] = Some(f(i)));
    out.into_iter().map(|slot| slot.expect("par_map_index task filled its slot")).collect()
}

/// Maps `f(index, item)` over `items` in parallel, returning results in item
/// order (see [`par_map_index`] for the determinism guarantee).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_index(items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bands_cover_range_in_order() {
        let b = bands(10, 4);
        assert_eq!(b, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(bands(2, 8).len(), 2);
        assert!(bands(0, 4).is_empty());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        let mut data = vec![0usize; 103];
        with_threads(4, || {
            par_chunks_mut(&mut data, 10, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += i + 1;
                }
            });
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, j / 10 + 1, "element {j}");
        }
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..57).collect();
        let serial = with_threads(1, || par_map(&items, |i, &x| i * 1000 + x));
        let parallel = with_threads(4, || par_map(&items, |i, &x| i * 1000 + x));
        assert_eq!(serial, parallel);
        assert_eq!(serial[13], 13_013);
    }

    #[test]
    fn par_map_index_matches_serial_iteration() {
        let serial: Vec<u64> = (0..100u64).map(|i| i * i).collect();
        let parallel = with_threads(4, || par_map_index(100, |i| (i as u64) * (i as u64)));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scope_runs_every_task() {
        let counter = AtomicUsize::new(0);
        with_threads(4, || {
            scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_borrows_mutably_from_stack() {
        let mut a = 0u64;
        let mut b = 0u64;
        with_threads(2, || {
            scope(|s| {
                s.spawn(|| a = 41);
                s.spawn(|| b = 1);
            });
        });
        assert_eq!(a + b, 42);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let mut outer = vec![0usize; 8];
        with_threads(4, || {
            par_chunks_mut(&mut outer, 2, |i, chunk| {
                // Nested primitive: must run inline on the worker.
                let inner = par_map_index(4, |j| i * 10 + j);
                chunk[0] = inner.iter().sum();
            });
        });
        assert_eq!(outer[0], 6); // sum of 0*10 + j for j in 0..4
        assert_eq!(outer[6], 126); // sum of 3*10 + j for j in 0..4
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_index(8, |i| {
                    if i == 5 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
        // The pool must remain usable after a panicking dispatch.
        let sum: usize = with_threads(4, || par_map_index(8, |i| i)).iter().sum();
        assert_eq!(sum, 28);
    }

    #[test]
    fn with_threads_clamps_and_restores() {
        assert!(available_threads() >= 1);
        let outside = available_threads();
        with_threads(0, || assert_eq!(available_threads(), 1));
        with_threads(100_000, || assert_eq!(available_threads(), MAX_THREADS));
        assert_eq!(available_threads(), outside);
    }

    #[test]
    fn parallel_beneficial_honours_threshold_and_thread_count() {
        with_threads(4, || {
            with_min_parallel_work(100, || {
                assert!(parallel_beneficial(100));
                assert!(!parallel_beneficial(99));
            });
        });
        with_threads(1, || {
            with_min_parallel_work(0, || assert!(!parallel_beneficial(usize::MAX)));
        });
    }

    #[test]
    fn inherited_context_crosses_into_pool_tasks() {
        let seen = with_threads(4, || {
            with_inherited_context(Some(42), || {
                with_min_parallel_work(0, || par_map_index(64, |_| inherited_context()))
            })
        });
        assert!(seen.iter().all(|c| *c == Some(42)), "context must reach every task");
        assert_eq!(inherited_context(), None, "context must restore after the scope");
    }

    #[test]
    fn overrides_restore_on_panic() {
        let before = min_parallel_work();
        let _ = std::panic::catch_unwind(|| {
            with_min_parallel_work(7, || panic!("escape"));
        });
        assert_eq!(min_parallel_work(), before);
    }
}
