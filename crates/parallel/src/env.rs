//! Typed environment-knob parsing shared by every `FUSE_*` configuration
//! surface in the workspace.
//!
//! Historically each crate parsed its own knobs: `fuse-parallel` silently
//! ignored garbage in `FUSE_THREADS`, while `fuse-cluster` returned a typed
//! error naming the offending knob. This module is the single source of truth
//! both now build on: *unset* is `Ok(None)`, *unparseable* is a typed
//! [`InvalidEnv`] carrying the knob name, the raw value and what was
//! expected — callers decide whether that becomes a `Result` (cluster/backend
//! configuration) or a fail-fast panic with the same message (the lazily
//! initialised process-wide thread count, where silently falling back would
//! mask a deployment typo).

use std::error::Error;
use std::fmt;

/// An environment knob was set to a value that does not parse.
///
/// The `expected` field describes the accepted syntax (e.g. `"a positive
/// integer"` or `"one of scalar|simd|auto"`), so the rendered message tells
/// an operator exactly how to fix the deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidEnv {
    /// Name of the environment variable.
    pub name: String,
    /// The raw value that failed to parse.
    pub value: String,
    /// Human-readable description of the accepted values.
    pub expected: &'static str,
}

impl fmt::Display for InvalidEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "environment knob {}={:?} is invalid (expected {})",
            self.name, self.value, self.expected
        )
    }
}

impl Error for InvalidEnv {}

/// Declarative description of one `FUSE_*` environment knob.
///
/// Every crate that owns knobs exports a `&'static [KnobDef]` registry next
/// to the code that parses them (e.g. [`PARALLEL_KNOBS`] here,
/// `fuse_backend::BACKEND_KNOBS`, `fuse_cluster::CLUSTER_KNOBS`).
/// [`render_knob_table`] turns those registries into the operator-facing
/// markdown reference embedded in `README.md`, and an integration test
/// asserts the rendered table appears there verbatim — the documentation
/// cannot drift from the typed definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobDef {
    /// Environment variable name.
    pub name: &'static str,
    /// Rendered default when the variable is unset.
    pub default: &'static str,
    /// Accepted syntax (mirrors the `expected` text of the typed parser).
    pub accepts: &'static str,
    /// One-line meaning for the reference table.
    pub description: &'static str,
}

/// The environment knobs owned by `fuse-parallel`.
pub const PARALLEL_KNOBS: &[KnobDef] = &[
    KnobDef {
        name: "FUSE_THREADS",
        default: "host parallelism",
        accepts: "positive integer (clamped to 256)",
        description: "Worker threads for the row/sample-parallel kernels and meta-batches",
    },
    KnobDef {
        name: "FUSE_PAR_MIN_WORK",
        default: "32768",
        accepts: "non-negative integer",
        description: "Scalar-op threshold below which kernels stay serial (0 forces parallel)",
    },
];

/// Renders knob registries as one GitHub-flavoured markdown table, in the
/// order given. The output ends with a newline and is exactly what the
/// `README.md` environment-knob reference embeds.
pub fn render_knob_table(sections: &[&[KnobDef]]) -> String {
    let mut out = String::from(
        "| Variable | Default | Accepts | Meaning |\n\
         |----------|---------|---------|---------|\n",
    );
    for section in sections {
        for knob in *section {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                knob.name, knob.default, knob.accepts, knob.description
            ));
        }
    }
    out
}

/// Reads a positive-integer environment knob, distinguishing *unset*
/// (`Ok(None)`) from *unparseable* (a typed [`InvalidEnv`]).
///
/// Zero is rejected: every `FUSE_*` count knob (threads, shards, sessions)
/// treats zero as a configuration mistake that would deadlock or divide by
/// zero. Use [`env_usize_allow_zero`] for thresholds where zero is
/// meaningful.
///
/// # Errors
///
/// Returns [`InvalidEnv`] when the variable is set but does not parse as an
/// integer `>= 1`.
pub fn env_usize(name: &str) -> Result<Option<usize>, InvalidEnv> {
    parse_usize(name, 1, "a positive integer")
}

/// Like [`env_usize`] but accepting zero (e.g. `FUSE_PAR_MIN_WORK=0` forces
/// every kernel through the parallel path).
///
/// # Errors
///
/// Returns [`InvalidEnv`] when the variable is set but does not parse as a
/// non-negative integer.
pub fn env_usize_allow_zero(name: &str) -> Result<Option<usize>, InvalidEnv> {
    parse_usize(name, 0, "a non-negative integer")
}

fn parse_usize(
    name: &str,
    min: usize,
    expected: &'static str,
) -> Result<Option<usize>, InvalidEnv> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= min => Ok(Some(n)),
            _ => Err(InvalidEnv { name: name.to_string(), value: raw, expected }),
        },
    }
}

/// Reads an enumerated environment knob: the value (trimmed, ASCII
/// case-insensitive) must be one of `choices`; the index of the match is
/// returned.
///
/// # Errors
///
/// Returns [`InvalidEnv`] (with `expected` rendering the accepted choice
/// list) when the variable is set but matches no choice.
pub fn env_choice(
    name: &str,
    choices: &'static [&'static str],
    expected: &'static str,
) -> Result<Option<usize>, InvalidEnv> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => {
            let lowered = raw.trim().to_ascii_lowercase();
            match choices.iter().position(|c| *c == lowered) {
                Some(i) => Ok(Some(i)),
                None => Err(InvalidEnv { name: name.to_string(), value: raw, expected }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global env vars: every test uses names nothing else touches.

    #[test]
    fn env_usize_distinguishes_unset_bad_and_good() {
        assert_eq!(env_usize("FUSE_TEST_ENV_UNSET").unwrap(), None);
        std::env::set_var("FUSE_TEST_ENV_GOOD", " 3 ");
        assert_eq!(env_usize("FUSE_TEST_ENV_GOOD").unwrap(), Some(3));
        std::env::set_var("FUSE_TEST_ENV_BAD", "2.5");
        let err = env_usize("FUSE_TEST_ENV_BAD").unwrap_err();
        assert_eq!(err.name, "FUSE_TEST_ENV_BAD");
        assert_eq!(err.value, "2.5");
        assert!(err.to_string().contains("FUSE_TEST_ENV_BAD"));
        assert!(err.to_string().contains("2.5"));
        std::env::remove_var("FUSE_TEST_ENV_GOOD");
        std::env::remove_var("FUSE_TEST_ENV_BAD");
    }

    #[test]
    fn env_usize_rejects_zero_unless_allowed() {
        std::env::set_var("FUSE_TEST_ENV_ZERO", "0");
        assert!(env_usize("FUSE_TEST_ENV_ZERO").is_err(), "zero threads/shards would deadlock");
        assert_eq!(env_usize_allow_zero("FUSE_TEST_ENV_ZERO").unwrap(), Some(0));
        std::env::remove_var("FUSE_TEST_ENV_ZERO");
    }

    #[test]
    fn env_choice_matches_case_insensitively_and_names_expectations() {
        const CHOICES: &[&str] = &["scalar", "simd", "auto"];
        assert_eq!(env_choice("FUSE_TEST_ENV_CHOICE_UNSET", CHOICES, "x").unwrap(), None);
        std::env::set_var("FUSE_TEST_ENV_CHOICE", " SIMD ");
        assert_eq!(env_choice("FUSE_TEST_ENV_CHOICE", CHOICES, "x").unwrap(), Some(1));
        std::env::set_var("FUSE_TEST_ENV_CHOICE", "gpu");
        let err =
            env_choice("FUSE_TEST_ENV_CHOICE", CHOICES, "one of scalar|simd|auto").unwrap_err();
        assert_eq!(err.value, "gpu");
        assert!(err.to_string().contains("one of scalar|simd|auto"));
        std::env::remove_var("FUSE_TEST_ENV_CHOICE");
    }

    #[test]
    fn knob_table_renders_every_definition_once() {
        let table = render_knob_table(&[PARALLEL_KNOBS]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + PARALLEL_KNOBS.len(), "header + one row per knob");
        assert!(lines[0].starts_with("| Variable "));
        for knob in PARALLEL_KNOBS {
            assert_eq!(table.matches(knob.name).count(), 1, "{} must render once", knob.name);
        }
        assert!(table.ends_with('\n'));
    }

    #[test]
    fn invalid_env_is_a_std_error() {
        fn assert_error<T: Error + Send + Sync>() {}
        assert_error::<InvalidEnv>();
    }
}
